#!/usr/bin/env python3
"""Case study D (Sec. VI-D) as automated design-space exploration.

Builds the sweep as a declarative ``StudySpec`` — the (UAV x compute x
algorithm) cross product, filtered and ranked as data — runs it
through ``run_study``, and shows the spec surviving a JSON round trip
bit-exactly.  The Pareto frontier and constrained selection then reuse
``dse.explore``, which compiles to the *same* plan (the shared batch
cache makes the second pass free).

Run:  python examples/full_system_dse.py
"""

from repro.dse import DesignSpace, SelectionCriteria, explore, pareto_front, select_best
from repro.dse.explorer import results_table
from repro.study import DesignSpec, FilterClause, RankClause, StudySpec, run_study


def main() -> None:
    space = DesignSpace(
        uav_names=("dji-spark", "asctec-pelican", "nano-uav"),
        compute_names=("intel-ncs", "jetson-tx2", "raspi4", "pulp-gap8"),
        algorithm_names=("dronet", "trailnet", "cad2rl", "vgg16"),
    )

    # The whole exploration as one serializable request.
    spec = StudySpec(
        design=DesignSpec.presets(
            space.uav_names, space.compute_names, space.algorithm_names
        ),
        filters=(FilterClause("total_mass_g", "<=", 2500.0),),
        rank=RankClause(by="safe_velocity", descending=True, top_k=20),
    )
    print(f"exploring {len(space)} design points as a StudySpec...\n")
    result = run_study(spec)
    print(result.describe())
    print()
    print(result.table())

    # The request is data: it round-trips through JSON bit-exactly.
    replayed = StudySpec.from_json(spec.to_json()).run()
    assert replayed.equals(result)
    print("\nspec -> JSON -> spec replay: identical result "
          f"({len(spec.to_json())} bytes of JSON)\n")

    # The legacy surface compiles to the same plan (cache hit).
    results = explore(space)
    print(results_table(results[:10]))
    print(f"... ({len(results)} total)\n")

    front = pareto_front(results)
    print("Pareto frontier (maximize velocity, minimize TDP):")
    for entry in front:
        print(
            f"  {entry.label:<44s} v={entry.safe_velocity:5.2f} m/s  "
            f"TDP={entry.compute_tdp_w:6.2f} W"
        )

    criteria = SelectionCriteria(
        max_total_mass_g=600.0, max_compute_tdp_w=10.0
    )
    best = select_best(results, criteria)
    print(
        f"\nBest design under (mass <= 600 g, TDP <= 10 W): {best.label} "
        f"at {best.safe_velocity:.2f} m/s ({best.bound.value}-bound)"
    )


if __name__ == "__main__":
    main()
