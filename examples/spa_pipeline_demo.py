#!/usr/bin/env python3
"""The Sense-Plan-Act paradigm, executable end to end.

This repository does not just tabulate SPA latencies — it implements
the stages.  The demo:

1. profiles occupancy-grid mapping + A* planning *on this machine*,
   reproducing MAVBench's observation that planning dominates;
2. feeds the measured decision rate into the F-1 model ("what if this
   laptop were the onboard computer?");
3. flies the closed navigation loop through an obstacle corridor,
   showing behaviorally that decision rate gates safe velocity.

Run:  python examples/spa_pipeline_demo.py
"""

from repro.autonomy import profile_spa_stages
from repro.io import format_table
from repro.sim import CorridorWorld, navigate_corridor
from repro.skyline import Skyline


def main() -> None:
    # --- 1. Profile the executable SPA stack ------------------------------
    profile = profile_spa_stages(world_size_m=20.0, scan_beams=180, repeats=3)
    print("SPA stage latencies measured on this host:\n")
    print(
        format_table(
            ("stage", "latency (ms)"),
            [(stage, f"{ms:.2f}") for stage, ms in profile.table_rows()],
        )
    )
    print(
        f"\n  end-to-end decision rate: {profile.decision_rate_hz:.1f} Hz "
        "(compare: 1.1 Hz for MAVBench package delivery on a TX2)\n"
    )

    # --- 2. F-1 verdict for "this machine as the onboard computer" --------
    session = Skyline.from_preset("asctec-pelican", sensor_range_m=3.0)
    report = session.evaluate_throughput(
        profile.decision_rate_hz, label="host-spa"
    )
    print(report.text())

    # --- 3. Behavioral cross-check in the corridor ------------------------
    print("\nClosed-loop corridor crossings (30 m, 12 obstacles):\n")
    world = CorridorWorld(seed=3)
    rows = []
    for velocity, f_action in ((1.0, 5.0), (6.0, 5.0), (6.0, 0.5)):
        result = navigate_corridor(
            world, velocity=velocity, f_action_hz=f_action
        )
        rows.append(
            (
                f"{velocity:g}",
                f"{f_action:g}",
                "reached" if result.reached_goal else "COLLIDED",
                f"{result.time_s:.1f}",
                result.replans,
            )
        )
    print(
        format_table(
            ("v (m/s)", "f_action (Hz)", "outcome", "time (s)", "replans"),
            rows,
        )
    )
    print(
        "\nThe same 6 m/s that collides at 0.5 Hz decisions crosses "
        "cleanly at 5 Hz —\nthe F-1 coupling between decision rate and "
        "safe velocity, observed in the loop."
    )


if __name__ == "__main__":
    main()
