#!/usr/bin/env python3
"""Sec. IV reproduced: validate the F-1 model against simulated flights.

For each Table I drone (UAV-A..D) the script predicts the safe
velocity with the F-1 model, then flies the obstacle-stop experiment
(five noisy trials per candidate velocity, exactly the paper's
protocol) and reports the model's optimism.  Also demonstrates the
inverse problem: recovering a_max from observed flights.

Run:  python examples/flight_validation.py   (takes ~15 s)
"""

from repro.io import format_table
from repro.validation import fit_acceleration, run_validation_campaign
from repro.validation.flight_tests import (
    PAPER_ERROR_PCT,
    PAPER_PREDICTED_V,
)


def main() -> None:
    print("running the A-D validation campaign (simulated flights)...\n")
    campaign = run_validation_campaign(trials=5, seed=7)

    rows = []
    for variant, row in sorted(campaign.items()):
        rows.append(
            (
                f"UAV-{variant}",
                f"{row.total_mass_g:.0f}",
                f"{row.predicted_velocity:.2f}",
                f"{PAPER_PREDICTED_V[variant]:.2f}",
                f"{row.observed_velocity:.2f}",
                f"{row.error_pct:.1f}%",
                f"{PAPER_ERROR_PCT[variant]:.1f}%",
            )
        )
    print(
        format_table(
            (
                "drone", "mass (g)", "pred (m/s)", "paper pred",
                "observed", "err", "paper err",
            ),
            rows,
        )
    )

    # Inverse problem: what effective a_max do the flights imply?
    print("\ncalibration from observed flights (UAV-A):")
    row_a = campaign["A"]
    fitted = fit_acceleration(
        [(0.1, row_a.observed_velocity)], sensing_range_m=3.0
    )
    print(
        f"  spec-sheet model a_max = {row_a.a_max:.3f} m/s^2, "
        f"flight-implied a_max = {fitted:.3f} m/s^2"
    )
    print(
        "  (the gap is the drag + pitch-lag + derate the early-phase "
        "model deliberately ignores)"
    )


if __name__ == "__main__":
    main()
