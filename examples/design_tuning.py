#!/usr/bin/env python3
"""Design tuning: DVFS balancing, sensitivity analysis, mass budgets.

The paper's optimization tips made executable:

1. *Where to optimize* — closed-form sensitivities of the operating
   point (which knob's relative improvement buys the most velocity).
2. *Mass budget* — gram-by-gram breakdown showing how much of the
   Spark an AGX heatsink eats.
3. *Trade throughput for TDP* — DVFS-balance the over-provisioned AGX
   down to the knee, shrinking the heatsink and raising the roof.
4. *What-if sweeps* — the Skyline TDP slider as a table.

Run:  python examples/design_tuning.py
"""

from repro.autonomy import get_algorithm
from repro.compute import balance_to_knee, get_platform
from repro.core.sensitivity import analyze_sensitivity
from repro.skyline import Knobs
from repro.skyline.sweep import sweep_knob
from repro.uav import dji_spark, mass_budget


def main() -> None:
    agx = get_platform("jetson-agx-30w")
    uav = dji_spark(agx)
    f_dronet = get_algorithm("dronet").throughput_on(agx)
    model = uav.f1(f_dronet)

    # --- 1. Sensitivities -------------------------------------------------
    report = analyze_sensitivity(
        model, uav.acceleration_model, uav.total_mass_g
    )
    print("Operating-point sensitivities (Spark + AGX-30W + DroNet):")
    print(f"  elasticity wrt sensing range     : {report.elasticity_range:+.2f}")
    print(f"  elasticity wrt acceleration      : {report.elasticity_acceleration:+.2f}")
    print(f"  elasticity wrt action throughput : {report.elasticity_throughput:+.3f}")
    print(f"  velocity cost per gram of payload: {report.d_payload_per_gram:+.4f} m/s/g")
    print(f"  => spend effort on: {report.dominant_knob()}\n")

    # --- 2. Mass budget ---------------------------------------------------
    print("Mass budget:")
    print(mass_budget(uav).table())
    print()

    # --- 3. DVFS balance --------------------------------------------------
    balanced = balance_to_knee(uav, f_dronet)
    print("DVFS balancing the AGX down to the knee:")
    print(f"  frequency scale : {balanced.scale:.2f}x")
    print(f"  throughput      : {f_dronet:.0f} -> {balanced.f_compute_hz:.0f} Hz")
    print(f"  TDP             : {agx.tdp_w:.0f} -> {balanced.tdp_w:.1f} W "
          f"(saves {balanced.tdp_saved_w:.1f} W)")
    print(f"  heatsink saved  : {balanced.heatsink_saved_g:.0f} g")
    print(f"  safe velocity   : {balanced.roof_velocity_before:.2f} -> "
          f"{balanced.roof_velocity_after:.2f} m/s "
          f"(+{balanced.velocity_gain_pct:.0f}%)\n")

    # --- 4. Knob sweep ----------------------------------------------------
    print("Skyline TDP slider as a sweep:")
    sweep = sweep_knob(
        Knobs(compute_runtime_s=1.0 / 230.0),
        "compute_tdp_w",
        [1.0, 5.0, 10.0, 15.0, 20.0, 30.0],
    )
    print(sweep.table())


if __name__ == "__main__":
    main()
