"""Benchmark: scalar-loop vs. batch F-1 evaluation at fleet scale.

Two end-to-end comparisons:

* **engine** — the same design grids through the per-point
  :class:`~repro.core.model.F1Model` loop and the vectorized
  :mod:`repro.batch` engine (evaluation only).
* **assembly** — whole knob sweeps through the per-point
  ``Knobs.build_uav().f1(...)`` idiom and the columnar
  :class:`~repro.batch.assembly.KnobMatrix` chain (assembly *plus*
  evaluation), the regime `sweep_grid` multi-knob studies live in.

Each runs at 1k / 10k / 100k points, asserting the batch path wins by
the required margin at 10k and above.  A third comparison — **study**
— runs the same knob grid through the declarative
:mod:`repro.study` layer (spec construction + planner compile +
dispatch) and asserts the abstraction costs < 5% over the raw
``KnobMatrix`` + ``evaluate_matrix`` path at 100k points, so the
spec-first API can never quietly become a tax.  Set
``REPRO_RECORD_BENCH=1`` to append the measured numbers to
``benchmarks/results/bench_batch.json`` so the bench trajectory keeps
populating across machines and revisions.  Set ``REPRO_BENCH_SMOKE=1``
(CI does) to run tiny grids that exercise every code path without
timing assertions, so the benchmark code itself cannot rot; adding
``REPRO_BENCH_OUT=<dir>`` (the CI regression gate does) records a
smoke-speed run at small-but-stable sizes into ``<dir>`` for
``check_regression.py`` (see ``_recording.py``).
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from _recording import GATE, SMOKE, record
from repro.batch import (
    DesignMatrix,
    KnobMatrix,
    cartesian_product,
    evaluate_matrix,
    scenario_grid,
)
from repro.skyline.knobs import Knobs

if SMOKE:
    SIZES = (1_000,) if GATE else (64,)
else:
    SIZES = (1_000, 10_000, 100_000)

#: Required end-to-end advantage of the columnar assembly chain at 10k+
#: points (the acceptance bar; measured speedups are far higher).
MIN_ASSEMBLY_SPEEDUP = 10.0

#: Allowed relative overhead of the declarative study layer (spec
#: compile + dispatch) over the raw assembly + evaluation it plans.
MAX_STUDY_OVERHEAD = 0.05


def _grid(n_points: int) -> DesignMatrix:
    """A representative scenario grid with exactly ``n_points`` rows."""
    per_axis = max(2, round(n_points ** (1.0 / 4.0)))
    grid = scenario_grid(
        sensing_range_m=np.linspace(2.0, 20.0, per_axis),
        a_max=np.linspace(5.0, 50.0, per_axis),
        f_sensor_hz=np.linspace(15.0, 90.0, per_axis),
        f_compute_hz=np.geomspace(1.0, 1000.0, per_axis),
    )
    if len(grid) < n_points:
        raise AssertionError(f"grid too small: {len(grid)} < {n_points}")
    return grid.take(np.arange(n_points))


def _knob_columns(n_points: int) -> dict:
    """Three crossed Table II knob axes, truncated to ``n_points``."""
    per_axis = int(np.ceil(n_points ** (1.0 / 3.0)))
    columns = cartesian_product(
        {
            "compute_tdp_w": np.linspace(1.0, 30.0, per_axis),
            "compute_runtime_s": np.geomspace(0.002, 0.5, per_axis),
            "payload_weight_g": np.linspace(0.0, 500.0, per_axis),
        }
    )
    return {name: column[:n_points] for name, column in columns.items()}


def _scalar_loop(matrix: DesignMatrix) -> np.ndarray:
    """The pre-batch consumer idiom: one F1Model per design point."""
    velocities = np.empty(len(matrix))
    for i in range(len(matrix)):
        model = matrix.model_at(i)
        velocities[i] = model.safe_velocity
        _ = model.knee.throughput_hz
        _ = model.bound
    return velocities


def _scalar_assembly_loop(base: Knobs, columns: dict) -> np.ndarray:
    """The pre-assembly sweep idiom: build_uav + f1 per knob point."""
    n = len(next(iter(columns.values())))
    velocities = np.empty(n)
    for i in range(n):
        knobs = replace(
            base, **{name: float(col[i]) for name, col in columns.items()}
        )
        model = knobs.build_uav().f1(knobs.f_compute_hz)
        velocities[i] = model.safe_velocity
        _ = model.knee.throughput_hz
        _ = model.bound
    return velocities


def _batch_assembly(base: Knobs, columns: dict):
    """The columnar chain: KnobMatrix assembly + one engine pass."""
    matrix = KnobMatrix.from_base(base, **columns).assemble()
    return evaluate_matrix(matrix, cache=None)


def _time(fn, *args):
    fn(*args)  # warm-up
    start = time.perf_counter()
    value = fn(*args)
    return time.perf_counter() - start, value


def _measure_engine(n_points: int) -> dict:
    matrix = _grid(n_points)
    scalar_s, scalar_velocities = _time(_scalar_loop, matrix)
    batch_s, result = _time(
        lambda m: evaluate_matrix(m, cache=None), matrix
    )
    np.testing.assert_allclose(
        result.safe_velocity, scalar_velocities, atol=1e-9
    )
    return {
        "points": n_points,
        "scalar_s": round(scalar_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(scalar_s / batch_s, 1),
    }


def _measure_assembly(n_points: int) -> dict:
    base = Knobs()
    columns = _knob_columns(n_points)
    scalar_s, scalar_velocities = _time(
        _scalar_assembly_loop, base, columns
    )
    batch_s, result = _time(_batch_assembly, base, columns)
    np.testing.assert_allclose(
        result.safe_velocity[: scalar_velocities.size],
        scalar_velocities,
        atol=1e-9,
    )
    return {
        "points": n_points,
        "scalar_s": round(scalar_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(scalar_s / batch_s, 1),
    }


def _record(benchmark: str, rows: list) -> None:
    record("bench_batch.json", benchmark, rows)


def _print_rows(title: str, rows: list) -> None:
    for row in rows:
        print(
            f"[{title}] {row['points']:>7} points: "
            f"scalar {row['scalar_s']:.4f}s, "
            f"batch {row['batch_s']:.4f}s ({row['speedup']}x)"
        )


def test_bench_batch_vs_scalar():
    rows = [_measure_engine(n) for n in SIZES]
    _print_rows("engine", rows)
    _record("engine", rows)
    if SMOKE:
        return
    for row in rows:
        if row["points"] >= 10_000:
            assert row["batch_s"] < row["scalar_s"], row


def test_bench_assembly_vs_scalar():
    rows = [_measure_assembly(n) for n in SIZES]
    _print_rows("assembly", rows)
    _record("assembly", rows)
    if SMOKE:
        return
    for row in rows:
        if row["points"] >= 10_000:
            assert row["speedup"] >= MIN_ASSEMBLY_SPEEDUP, row


def test_bench_batch_100k_under_one_second():
    n_points = 1_000 if SMOKE else 100_000
    matrix = _grid(n_points)
    elapsed, _ = _time(lambda m: evaluate_matrix(m, cache=None), matrix)
    if not SMOKE:
        assert elapsed < 1.0, f"100k-point evaluation took {elapsed:.3f}s"


def _study_axes(n_points: int) -> dict:
    """Three crossed knob axes as plain value tuples (spec input)."""
    per_axis = int(np.ceil(n_points ** (1.0 / 3.0)))
    return {
        "compute_tdp_w": tuple(np.linspace(1.0, 30.0, per_axis)),
        "compute_runtime_s": tuple(np.geomspace(0.002, 0.5, per_axis)),
        "payload_weight_g": tuple(np.linspace(0.0, 500.0, per_axis)),
    }


def _raw_knob_run(base: Knobs, axes: dict):
    """What the planner compiles to, wired by hand (the baseline)."""
    columns = cartesian_product(axes)
    matrix = KnobMatrix.from_base(base, **columns).assemble()
    return evaluate_matrix(matrix, cache=None)


def _study_run(axes: dict):
    """The declarative path: spec -> plan -> result, cache off."""
    from repro.study import DesignSpec, StudySpec, run_study

    spec = StudySpec(design=DesignSpec.knob_axes(axes=axes))
    return run_study(spec, cache=None)


def _best_of(fn, *args, repeats: int = 3) -> float:
    fn(*args)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_study_overhead():
    """Spec compile + dispatch must stay < 5% over raw evaluate_matrix."""
    n_points = (1_000 if GATE else 64) if SMOKE else 100_000
    axes = _study_axes(n_points)
    raw_s = _best_of(_raw_knob_run, Knobs(), axes)
    study_s = _best_of(_study_run, axes)
    overhead = study_s / raw_s - 1.0
    per_axis = len(axes["compute_tdp_w"])
    row = {
        "points": per_axis ** 3,
        "raw_s": round(raw_s, 6),
        "study_s": round(study_s, 6),
        "overhead": round(overhead, 4),
    }
    print(
        f"[study] {row['points']:>7} points: raw {raw_s:.4f}s, "
        f"study {study_s:.4f}s ({overhead:+.1%} overhead)"
    )
    _record("study", [row])
    if SMOKE:
        return
    assert overhead < MAX_STUDY_OVERHEAD, row


def test_bench_sweep_grid_end_to_end():
    """sweep_grid stays wired front to back (smoke-sized on purpose)."""
    from repro.skyline.sweep import sweep_grid

    grid = sweep_grid(
        Knobs(),
        {
            "compute_tdp_w": np.linspace(1.0, 30.0, 4),
            "compute_runtime_s": np.geomspace(0.002, 0.5, 4),
            "payload_weight_g": np.linspace(0.0, 500.0, 3),
        },
    )
    assert grid.shape == (4, 4, 3)
    assert sum(grid.bound_counts().values()) == len(grid)


def test_bench_batch_cache_makes_repeats_free(benchmark):
    from repro.batch import BatchCache

    n_points = 1_000 if SMOKE else 100_000
    matrix = _grid(n_points)
    cache = BatchCache()
    evaluate_matrix(matrix, cache=cache)  # populate

    result = benchmark(evaluate_matrix, matrix, cache=cache)
    assert len(result) == n_points
    assert cache.stats.hits >= 1
