"""Benchmark: scalar-loop vs. batch F-1 evaluation at fleet scale.

Evaluates the same design grids through the per-point
:class:`~repro.core.model.F1Model` loop and the vectorized
:mod:`repro.batch` engine at 1k / 10k / 100k points, asserting the
batch path wins at 10k and above (the regime the paper's Sec. V DSE
sweeps need).  Set ``REPRO_RECORD_BENCH=1`` to append the measured
numbers to ``benchmarks/results/bench_batch.json`` so the bench
trajectory keeps populating across machines and revisions.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.batch import DesignMatrix, evaluate_matrix, scenario_grid

RESULTS_PATH = Path(__file__).parent / "results" / "bench_batch.json"
SIZES = (1_000, 10_000, 100_000)


def _grid(n_points: int) -> DesignMatrix:
    """A representative scenario grid with exactly ``n_points`` rows."""
    per_axis = round(n_points ** (1.0 / 4.0))
    grid = scenario_grid(
        sensing_range_m=np.linspace(2.0, 20.0, per_axis),
        a_max=np.linspace(5.0, 50.0, per_axis),
        f_sensor_hz=np.linspace(15.0, 90.0, per_axis),
        f_compute_hz=np.geomspace(1.0, 1000.0, per_axis),
    )
    if len(grid) < n_points:
        raise AssertionError(f"grid too small: {len(grid)} < {n_points}")
    return grid.take(np.arange(n_points))


def _scalar_loop(matrix: DesignMatrix) -> np.ndarray:
    """The pre-batch consumer idiom: one F1Model per design point."""
    velocities = np.empty(len(matrix))
    for i in range(len(matrix)):
        model = matrix.model_at(i)
        velocities[i] = model.safe_velocity
        _ = model.knee.throughput_hz
        _ = model.bound
    return velocities


def _time(fn, *args):
    fn(*args)  # warm-up
    start = time.perf_counter()
    value = fn(*args)
    return time.perf_counter() - start, value


def _measure(n_points: int) -> dict:
    matrix = _grid(n_points)
    scalar_s, scalar_velocities = _time(_scalar_loop, matrix)
    batch_s, result = _time(
        lambda m: evaluate_matrix(m, cache=None), matrix
    )
    np.testing.assert_allclose(
        result.safe_velocity, scalar_velocities, atol=1e-9
    )
    return {
        "points": n_points,
        "scalar_s": round(scalar_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(scalar_s / batch_s, 1),
    }


def _record(rows: list) -> None:
    if not os.environ.get("REPRO_RECORD_BENCH"):
        return
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    history.append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "rows": rows,
        }
    )
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_bench_batch_vs_scalar():
    rows = [_measure(n) for n in SIZES]
    for row in rows:
        print(
            f"{row['points']:>7} points: scalar {row['scalar_s']:.4f}s, "
            f"batch {row['batch_s']:.4f}s ({row['speedup']}x)"
        )
    _record(rows)
    for row in rows:
        if row["points"] >= 10_000:
            assert row["batch_s"] < row["scalar_s"], row


def test_bench_batch_100k_under_one_second():
    matrix = _grid(100_000)
    elapsed, _ = _time(lambda m: evaluate_matrix(m, cache=None), matrix)
    assert elapsed < 1.0, f"100k-point evaluation took {elapsed:.3f}s"


def test_bench_batch_cache_makes_repeats_free(benchmark):
    from repro.batch import BatchCache

    matrix = _grid(100_000)
    cache = BatchCache()
    evaluate_matrix(matrix, cache=cache)  # populate

    result = benchmark(evaluate_matrix, matrix, cache=cache)
    assert len(result) == 100_000
    assert cache.stats.hits >= 1
