#!/usr/bin/env python
"""End-to-end distributed smoke: 3 processes, one killed mid-shard.

What CI's ``distrib-smoke`` job runs (not pytest-collected — this is a
script with an exit code, like ``repro.serve.client``'s smoke mode):

1. publish a study into a shared work dir;
2. start a *victim* ``repro-skyline worker`` process whose shard
   computations are artificially slowed (the
   ``REPRO_DISTRIB_INJECT_SHARD_DELAY_S`` fault-injection knob), wait
   until it holds a lease, and SIGKILL it — a real mid-shard crash,
   lease on disk, no release, no heartbeats to come;
3. start a healthy joiner ``repro-skyline worker`` process and the
   initiator ``repro-skyline study --distributed`` process (three
   workers total, counting the corpse);
4. assert the initiator's merged result is **bitwise identical** to an
   in-process single-host run of the same spec, and that the finished
   work dir holds zero lease files.

Everything the run produced (spec, work dir contents, worker outputs,
a summary verdict) is left in ``--artifact-dir`` for the workflow
artifact.

Usage::

    python benchmarks/distrib_smoke.py --artifact-dir distrib-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
from pathlib import Path
from time import monotonic, sleep

from repro.batch.executor import CheckpointStore, iter_chunks
from repro.distrib import publish_spec, resolve_study_manifest
from repro.study import DesignSpec, StudySpec, run_study
from repro.study.result import StudyResult

N_ROWS = 16
CHUNK_ROWS = 2  # -> 8 shards
LEASE_TTL_S = 2.0
VICTIM_DELAY_S = 30.0  # the victim never finishes a shard on its own
KILL_TIMEOUT_S = 60.0
RUN_TIMEOUT_S = 300.0


def _spec() -> StudySpec:
    values = [1.0 + 0.5 * i for i in range(N_ROWS)]
    return StudySpec(
        design=DesignSpec.knob_axes(axes={"compute_tdp_w": values})
    )


def _worker_argv(work_dir: Path, worker_id: str) -> list:
    return [
        sys.executable, "-m", "repro.skyline.cli", "worker",
        "--work-dir", str(work_dir), "--worker-id", worker_id,
        "--lease-ttl", str(LEASE_TTL_S), "--poll", "0.1",
        "--wait", "60", "--json",
    ]


def _wait_for_lease_of(work_dir: Path, owner: str) -> bool:
    """True once ``owner`` holds a lease file in the work dir."""
    deadline = monotonic() + KILL_TIMEOUT_S
    leases = work_dir / "leases"
    while monotonic() < deadline:
        for path in leases.glob("shard-*.lease.json"):
            try:
                body = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if body.get("owner") == owner:
                return True
        sleep(0.05)
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifact-dir", default="distrib-smoke",
        help="directory for the work dir, logs and summary verdict",
    )
    args = parser.parse_args(argv)
    artifacts = Path(args.artifact_dir)
    work_dir = artifacts / "work-dir"
    artifacts.mkdir(parents=True, exist_ok=True)

    spec = _spec()
    (artifacts / "spec.json").write_text(
        spec.to_json(indent=2) + "\n", encoding="utf-8"
    )
    expected = run_study(spec)  # the single-host reference, in-process

    # Publish the study, then let the victim claim before anyone else.
    shards = list(iter_chunks(spec, chunk_rows=CHUNK_ROWS))
    manifest, _ = resolve_study_manifest(work_dir, shards)
    CheckpointStore.open(work_dir, manifest)
    publish_spec(work_dir, spec)

    victim_env = {
        **os.environ,
        "REPRO_DISTRIB_INJECT_SHARD_DELAY_S": str(VICTIM_DELAY_S),
    }
    victim_log = (artifacts / "victim.log").open("w", encoding="utf-8")
    victim = subprocess.Popen(
        _worker_argv(work_dir, "victim"),
        stdout=victim_log, stderr=subprocess.STDOUT, env=victim_env,
    )
    summary = {"n_shards": len(shards), "workers": 3}
    try:
        if not _wait_for_lease_of(work_dir, "victim"):
            print("FAIL: victim never claimed a lease", file=sys.stderr)
            return 1
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        summary["victim_killed_mid_shard"] = True

        joiner_log = (artifacts / "joiner.log").open("w", encoding="utf-8")
        joiner = subprocess.Popen(
            _worker_argv(work_dir, "joiner"),
            stdout=joiner_log, stderr=subprocess.STDOUT,
        )
        initiator = subprocess.run(
            [
                sys.executable, "-m", "repro.skyline.cli", "study",
                "--spec", str(artifacts / "spec.json"),
                "--distributed", "--work-dir", str(work_dir),
                "--worker-id", "initiator",
                "--lease-ttl", str(LEASE_TTL_S), "--json",
            ],
            capture_output=True, text=True, timeout=RUN_TIMEOUT_S,
        )
        (artifacts / "initiator.log").write_text(
            initiator.stderr, encoding="utf-8"
        )
        if initiator.returncode != 0:
            print(
                f"FAIL: initiator exited {initiator.returncode}:\n"
                f"{initiator.stderr}",
                file=sys.stderr,
            )
            return 1
        joiner_rc = joiner.wait(timeout=RUN_TIMEOUT_S)
        summary["joiner_exit"] = joiner_rc
    finally:
        for proc in (victim,):
            if proc.poll() is None:  # pragma: no cover - cleanup path
                proc.kill()

    merged = StudyResult.from_dict(json.loads(initiator.stdout))
    identical = merged.equals(expected)
    leases_left = sorted(
        p.name for p in (work_dir / "leases").glob("*.lease.json")
    )
    records = len(list(work_dir.glob("shard-*.jsonl")))
    summary.update(
        {
            "bitwise_identical": identical,
            "orphaned_leases": leases_left,
            "shard_records": records,
            "ok": bool(
                identical
                and not leases_left
                and records == len(shards)
                and joiner_rc == 0
            ),
        }
    )
    (artifacts / "summary.json").write_text(
        json.dumps(summary, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(summary, indent=2))
    if not summary["ok"]:
        print("FAIL: see summary above", file=sys.stderr)
        return 1
    print(
        "distrib smoke OK: crash mid-shard recovered, merge bitwise "
        "identical, zero leases left"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
