"""Benchmark: regenerate Fig. 7 (validation flights, the slow one)."""

from __future__ import annotations

from repro.experiments import fig07


def test_bench_fig07(benchmark):
    result = benchmark.pedantic(
        lambda: fig07.run(trials=1, seed=7), rounds=1, iterations=1
    )
    # Every drone's simulated error must stay in the optimistic band.
    for row in result.table_rows:
        error = float(row[3].rstrip("%"))
        assert 0.0 < error <= 15.0


def test_bench_single_flight(benchmark):
    """One obstacle-stop flight: the simulator's unit of work."""
    from repro.sim.obstacle_stop import ObstacleStopConfig, run_obstacle_stop
    from repro.uav.presets import custom_s500

    uav = custom_s500("A")
    config = ObstacleStopConfig(cruise_velocity=1.8, f_action_hz=10.0)
    flight = benchmark(run_obstacle_stop, uav, config, 3)
    assert flight.peak_velocity > 1.7
