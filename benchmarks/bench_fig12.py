"""Benchmark: regenerate Fig. 12 (heatsink mass vs TDP)."""

from __future__ import annotations

import pytest

from repro.core.heatsink import heatsink_mass_g
from repro.experiments import fig12


def test_bench_fig12(benchmark):
    result = benchmark(fig12.run)
    comparisons = {c.quantity: c for c in result.comparisons}
    assert "161.8" in comparisons["heatsink @ 30 W"].measured
    assert "16.2x" in comparisons["20x TDP reduction"].measured


def test_bench_heatsink_law(benchmark):
    mass = benchmark(heatsink_mass_g, 30.0)
    assert mass == pytest.approx(162.0, abs=1.0)
