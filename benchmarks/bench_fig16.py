"""Benchmark: regenerate Fig. 16 (accelerator pitfalls on a nano-UAV)."""

from __future__ import annotations

from repro.experiments import fig16


def test_bench_fig16(benchmark):
    result = benchmark(fig16.run)
    comparisons = {c.quantity: c for c in result.comparisons}
    assert "4.33x" in comparisons["PULP speedup needed"].measured
    assert "21.0x" in comparisons["Navion pipeline speedup needed"].measured
    # Both accelerators land compute-bound: the paper's pitfall.
    for row in result.table_rows:
        assert row[4] == "compute"
