"""Ablation: knee-point strategy (DESIGN.md Sec. 7).

The knee placement is the one modeling choice the paper leaves
unstated.  This ablation quantifies how the three strategies move the
knee — and therefore every over/under-provisioning verdict — on the
canonical Fig. 5 example and the Pelican case study.
"""

from __future__ import annotations

import pytest

from repro.core.knee import (
    FractionOfRoofKnee,
    LinearIntersectionKnee,
    MaxCurvatureKnee,
)

STRATEGIES = {
    "fraction-of-roof": FractionOfRoofKnee(),
    "linear-intersection": LinearIntersectionKnee(),
    "max-curvature": MaxCurvatureKnee(samples=801),
}


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_bench_knee_strategy(benchmark, name):
    strategy = STRATEGIES[name]
    knee = benchmark(strategy.locate, 10.0, 50.0)
    assert knee.throughput_hz > 0
    assert 0.0 < knee.fraction_of_roof <= 1.0


def test_ablation_ordering():
    """The strategies bracket each other consistently: linear far left,
    curvature in the middle, fraction-of-roof nearest the roof."""
    knees = {
        name: strategy.locate(10.0, 50.0).throughput_hz
        for name, strategy in STRATEGIES.items()
    }
    assert (
        knees["linear-intersection"]
        < knees["max-curvature"]
        < knees["fraction-of-roof"]
    )
    # Only fraction-of-roof reproduces the paper's ~100 Hz annotation.
    assert knees["fraction-of-roof"] == pytest.approx(98.0, abs=0.5)
    assert knees["linear-intersection"] < 10.0


def test_ablation_verdict_sensitivity():
    """DroNet on the Pelican: over-provisioned under every strategy,
    but by strategy-dependent factors (4.1x vs ~80x) — why the paper's
    quoted factors pin down its implicit knee rule."""
    from repro.uav.presets import asctec_pelican

    uav = asctec_pelican(sensor_range_m=3.0)
    factors = {}
    for name, strategy in STRATEGIES.items():
        model = uav.f1(178.0, knee_strategy=strategy)
        factors[name] = model.compute_overprovision_factor
    assert all(factor > 1.0 for factor in factors.values())
    assert factors["fraction-of-roof"] == pytest.approx(4.14, abs=0.05)
    assert factors["linear-intersection"] > 10 * factors["fraction-of-roof"]
