"""Benchmark: the serving layer (repro.serve) under concurrency.

Three measurements, all over real sockets against an in-process
server (``ServerHandle`` on port 0):

* **serve-coalesce** — N identical concurrent study submissions must
  collapse onto exactly one execution.  The gated ``hit_rate`` is
  ``coalesced / submissions`` read from the server's obs counters —
  deterministically ``(N-1)/N`` while coalescing works and ~0 the
  moment it silently breaks, which is exactly what a regression gate
  wants.  The bench also asserts every client received bitwise-
  identical result bytes.
* **serve-saturate** — backpressure at a full queue.  The worker is
  gated shut (a blocked ``run_study`` stand-in), so capacity is
  exactly 1 running + ``max_queue`` queued by construction; every
  further distinct submission must come back 429 with a
  ``Retry-After`` estimate.  The gated ``reject_rate`` is the
  rejected fraction of the oversubscribed burst — again
  deterministic.
* **serve-analyze** — raw round-trip latency of ``POST /v1/analyze``
  vs the same closed-form evaluation in-process.  Raw seconds are
  recorded for the trajectory but never gated (HTTP latency on a
  shared runner is weather, not signal).

``REPRO_BENCH_SMOKE=1`` shrinks repeat counts;
``REPRO_RECORD_BENCH=1`` / ``REPRO_BENCH_OUT=<dir>`` record rows to
``benchmarks/results/bench_serve.json`` or ``<dir>``.
"""

from __future__ import annotations

import threading
from time import perf_counter

from _recording import SMOKE, record

import repro.serve.scheduler as scheduler_mod
from repro.errors import StudyQueueFullError
from repro.serve import ServeClient, ServeConfig, ServerHandle
from repro.serve.protocol import parse_analyze_request, run_analyze
from repro.study import DesignSpec, StudySpec

#: Concurrent clients in the coalescing burst.
N_CLIENTS = 8

#: Distinct specs thrown at the saturated server (capacity is 2:
#: one running + one queued).
N_SATURATE = 6

ANALYZE_REPEATS = 5 if SMOKE else 25


def _spec(n_rows: int, start: float) -> StudySpec:
    values = [start + 0.002 * i for i in range(n_rows)]
    return StudySpec(
        design=DesignSpec.knob_axes(axes={"compute_runtime_s": values})
    )


def test_bench_serve_coalesce():
    """N identical concurrent submissions -> exactly one execution."""
    handle = ServerHandle(
        ServeConfig(chunk_rows=8, max_queue=N_CLIENTS)
    ).start()
    try:
        spec_doc = _spec(64, start=0.01).to_dict()
        barrier = threading.Barrier(N_CLIENTS)
        results: list = [None] * N_CLIENTS
        errors: list = []

        def worker(i: int) -> None:
            try:
                with ServeClient(port=handle.port) as client:
                    barrier.wait()
                    ack = client.submit(spec_doc)
                    results[i] = client.wait_result(
                        ack["study_id"], timeout_s=120
                    )
            except Exception as exc:
                errors.append(exc)

        started = perf_counter()
        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed_s = perf_counter() - started

        assert not errors, errors
        assert len(set(results)) == 1, "fan-out was not bitwise identical"
        counters = handle.server.tracer.counters_snapshot()
        executed = counters.get("serve.studies.executed", 0)
        coalesced = counters.get("serve.studies.coalesced", 0)
        submitted = counters.get("serve.studies.submitted", 0)
        assert executed == 1, f"expected 1 execution, got {executed}"
        assert submitted == 1
        assert coalesced == N_CLIENTS - 1
        hit_rate = coalesced / (coalesced + submitted)
        assert hit_rate > 0, "coalescing hit rate must be positive"

        print(
            f"\nserve-coalesce: {N_CLIENTS} clients, {executed} "
            f"execution(s), hit_rate {hit_rate:.3f}, "
            f"{elapsed_s * 1e3:.1f} ms end-to-end"
        )
        record(
            "bench_serve.json",
            "serve-coalesce",
            [
                {
                    "points": N_CLIENTS,
                    "hit_rate": hit_rate,
                    "executed": executed,
                    "elapsed_s": elapsed_s,
                }
            ],
        )
    finally:
        handle.stop()


def test_bench_serve_saturate():
    """An oversubscribed queue rejects the overflow with 429s."""

    gate = threading.Event()

    class _StubResult:
        def to_json(self) -> str:
            return "{}"

    def gated_run_study(spec, **kwargs):
        gate.wait(60)
        return _StubResult()

    real_run_study = scheduler_mod.run_study
    scheduler_mod.run_study = gated_run_study
    handle = ServerHandle(
        ServeConfig(max_concurrent=1, max_queue=1)
    ).start()
    try:
        accepted = 0
        rejected = 0
        retry_after_s = 0.0
        with ServeClient(port=handle.port) as client:
            first = client.submit(_spec(8, start=0.01).to_dict())
            deadline = perf_counter() + 30
            while client.status(first["study_id"])["state"] != "running":
                assert perf_counter() < deadline, "worker never started"
            accepted += 1
            for i in range(1, N_SATURATE):
                try:
                    client.submit(_spec(8, start=0.01 + i).to_dict())
                    accepted += 1
                except StudyQueueFullError as exc:
                    rejected += 1
                    assert exc.retry_after_s >= 1.0
                    retry_after_s = exc.retry_after_s
        # Capacity is exactly 1 running + 1 queued by construction.
        assert accepted == 2
        assert rejected == N_SATURATE - 2
        counters = handle.server.tracer.counters_snapshot()
        assert counters["serve.studies.rejected"] == rejected
        reject_rate = rejected / N_SATURATE

        print(
            f"\nserve-saturate: {accepted} accepted, {rejected} "
            f"rejected (reject_rate {reject_rate:.3f}), "
            f"Retry-After {retry_after_s:.1f}s"
        )
        record(
            "bench_serve.json",
            "serve-saturate",
            [
                {
                    "points": N_SATURATE,
                    "reject_rate": reject_rate,
                    "retry_after_s": retry_after_s,
                }
            ],
        )
    finally:
        gate.set()
        handle.stop()
        scheduler_mod.run_study = real_run_study


def test_bench_serve_analyze_latency():
    """HTTP round-trip vs in-process closed-form (recorded, ungated)."""
    request = {"uav": "dji-spark", "runtime_s": 0.1}
    parsed = parse_analyze_request(dict(request))

    handle = ServerHandle(ServeConfig()).start()
    try:
        with ServeClient(port=handle.port) as client:
            client.analyze(dict(request))  # warm-up
            best_http_s = float("inf")
            for _ in range(ANALYZE_REPEATS):
                started = perf_counter()
                served = client.analyze(dict(request))
                best_http_s = min(best_http_s, perf_counter() - started)
        run_analyze(parsed)  # warm-up
        best_inproc_s = float("inf")
        for _ in range(ANALYZE_REPEATS):
            started = perf_counter()
            local = run_analyze(parsed)
            best_inproc_s = min(
                best_inproc_s, perf_counter() - started
            )
        assert served == local

        print(
            f"\nserve-analyze: HTTP {best_http_s * 1e3:.2f} ms vs "
            f"in-process {best_inproc_s * 1e3:.2f} ms "
            f"(x{best_http_s / best_inproc_s:.1f} transport cost)"
        )
        record(
            "bench_serve.json",
            "serve-analyze",
            [
                {
                    "points": ANALYZE_REPEATS,
                    "latency_s": best_http_s,
                    "inproc_s": best_inproc_s,
                }
            ],
        )
    finally:
        handle.stop()
