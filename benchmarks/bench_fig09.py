"""Benchmark: regenerate Fig. 9 (velocity vs payload weight)."""

from __future__ import annotations

from repro.experiments import fig09


def test_bench_fig09(benchmark):
    result = benchmark(fig09.run)
    comparisons = {c.quantity: c for c in result.comparisons}
    # The flat-tail claim: C -> D loses < 3 %.
    drop = float(
        comparisons["C -> D velocity drop (+50 g)"].measured.split("%")[0]
    )
    assert drop < 3.0
    # The steep region: A -> C loses > 20 %.
    drop_ac = float(
        comparisons["A -> C velocity drop (+50 g)"].measured.split("%")[0]
    )
    assert drop_ac > 20.0
