"""Benchmark: regenerate Fig. 13 (case B: algorithms on Pelican+TX2)."""

from __future__ import annotations

import pytest

from repro.experiments import fig13


def test_bench_fig13(benchmark):
    result = benchmark(fig13.run)
    rows = {r[0]: r for r in result.table_rows}
    # Who wins: E2E networks reach the roof; SPA is stuck at 2.3 m/s.
    spa_v = float(rows["spa-package-delivery"][3])
    dronet_v = float(rows["dronet"][3])
    assert spa_v == pytest.approx(2.30, abs=0.02)
    assert dronet_v > 2.0 * spa_v * 0.85  # roof ~4.1 vs ceiling 2.3
    # Crossover: the knee sits at 43 Hz between SPA (1.1) and E2E (55+).
    assert float(rows["spa-package-delivery"][2]) == pytest.approx(
        43.0, abs=0.2
    )
    assert rows["spa-package-delivery"][4] == "compute"
    assert rows["dronet"][4] == "physics"
