"""Benchmark: regenerate Fig. 11 (case A: NCS vs AGX on DJI Spark)."""

from __future__ import annotations

import pytest

from repro.experiments import fig11


def test_bench_fig11(benchmark):
    result = benchmark(fig11.run)
    rows = {r[0]: r for r in result.table_rows}
    roof = lambda name: float(rows[name][4])
    # Who wins: the lighter NCS, despite 1.5x lower throughput.
    assert roof("intel-ncs") > roof("jetson-agx-30w")
    # By roughly what factor: the 15 W re-bin recovers +75 %.
    assert roof("jetson-agx-15w") / roof("jetson-agx-30w") == pytest.approx(
        1.75, abs=0.01
    )
    # Both AGX variants are physics-bound (over-provisioned compute).
    assert rows["jetson-agx-30w"][5] == "physics"
