"""Performance benchmarks for the substrates themselves.

These track the cost of the building blocks (DES pipeline, body
dynamics, SVG rendering, DSE sweeps) rather than a paper artifact.
"""

from __future__ import annotations

import pytest

from repro.dse.explorer import explore
from repro.dse.space import DesignSpace
from repro.dynamics.body import LongitudinalBody
from repro.pipeline.pipeline_sim import simulate_pipeline
from repro.skyline.plotting import roofline_figure
from repro.uav.presets import asctec_pelican


def test_bench_pipeline_des(benchmark):
    stats = benchmark(
        simulate_pipeline, 60.0, 30.0, 1000.0, 10.0
    )
    assert stats.action_throughput_hz == pytest.approx(30.0, rel=0.05)


def test_bench_body_dynamics_10k_steps(benchmark):
    def run() -> float:
        body = LongitudinalBody(
            total_mass_g=1620.0, a_limit=0.73, pitch_lag_s=0.25
        )
        body.command_acceleration(0.73)
        for _ in range(10_000):
            body.step(0.001)
        return body.v

    velocity = benchmark(run)
    assert velocity > 0.5


def test_bench_svg_render(benchmark):
    uav = asctec_pelican()
    model = uav.f1(178.0)
    figure = roofline_figure((("pelican", model),), points=512)

    svg = benchmark(lambda: figure.render().to_svg())
    assert "pelican" in svg


def test_bench_dse_sweep(benchmark):
    space = DesignSpace(
        uav_names=("dji-spark", "asctec-pelican", "nano-uav"),
        compute_names=("intel-ncs", "jetson-tx2", "raspi4", "pulp-gap8"),
        algorithm_names=("dronet", "trailnet", "cad2rl", "vgg16"),
    )
    results = benchmark(explore, space)
    assert len(results) == len(space)


def test_bench_f1_analysis(benchmark):
    """One full F-1 analysis (knee + bound + optimality)."""
    uav = asctec_pelican()

    def analyze():
        model = uav.f1(178.0)
        return (
            model.knee.throughput_hz,
            model.bound,
            model.optimality().status,
        )

    knee_hz, _, _ = benchmark(analyze)
    assert knee_hz > 0
