"""Ablation: DVFS balancing (the Sec. VI-A/VI-D optimization tip).

Quantifies "trade over-provisioned throughput for lower TDP" across
the paper's over-provisioned design points, and checks the trade is
*not* available (and correctly refused) for compute-bound designs.
"""

from __future__ import annotations

import pytest

from repro.autonomy.workloads import get_algorithm
from repro.compute.dvfs import DvfsModel, balance_to_knee
from repro.compute.platforms import get_platform
from repro.errors import InfeasibleDesignError
from repro.uav.presets import asctec_pelican, dji_spark


def test_bench_balance_spark_agx(benchmark):
    uav = dji_spark(get_platform("jetson-agx-30w"))
    balanced = benchmark(balance_to_knee, uav, 230.0)
    # Large, one-directional win: >50 % velocity for >100 g shed.
    assert balanced.velocity_gain_pct > 50.0
    assert balanced.heatsink_saved_g > 100.0


def test_ablation_gain_tracks_overprovisioning():
    """The more over-provisioned the design, the more DVFS recovers:
    Spark+AGX (21x over) gains far more than Pelican+TX2 (4x over)."""
    tx2 = get_platform("jetson-tx2")
    agx = get_platform("jetson-agx-30w")
    dronet = get_algorithm("dronet")

    spark = balance_to_knee(dji_spark(agx), dronet.throughput_on(agx))
    pelican = balance_to_knee(
        asctec_pelican(tx2, sensor_range_m=3.0), dronet.throughput_on(tx2)
    )
    assert spark.velocity_gain_pct > 3 * pelican.velocity_gain_pct
    assert pelican.velocity_gain_pct >= 0.0


def test_ablation_static_power_limits_the_trade():
    """With a high leakage floor, slowing the clock saves little TDP,
    so the velocity recovered shrinks — the ablation knob architects
    actually control via process/power-gating choices."""
    uav = dji_spark(get_platform("jetson-agx-30w"))
    leaky = balance_to_knee(
        uav, 230.0, dvfs=DvfsModel(static_fraction=0.8)
    )
    tight = balance_to_knee(
        uav, 230.0, dvfs=DvfsModel(static_fraction=0.05)
    )
    assert tight.velocity_gain_pct > leaky.velocity_gain_pct


def test_ablation_compute_bound_refused():
    uav = asctec_pelican(get_platform("jetson-tx2"), sensor_range_m=3.0)
    with pytest.raises(InfeasibleDesignError):
        balance_to_knee(uav, 1.1)
