"""Ablation: acceleration model (DESIGN.md Sec. 7).

Compares the default rated-thrust-margin-with-braking-floor model
against the pure margin and the altitude-holding pitch envelope on the
Table I drones, showing why the composite model is the one that
reproduces the paper's validation velocities.
"""

from __future__ import annotations

import pytest

from repro.core.physics import PitchEnvelopeModel, ThrustMarginModel
from repro.core.safety import safe_velocity
from repro.errors import InfeasibleDesignError
from repro.uav.presets import custom_s500


def _predicted_v(a_max: float) -> float:
    return safe_velocity(0.1, 3.0, a_max)


def test_bench_default_model(benchmark):
    uav = custom_s500("A")
    a = benchmark(
        uav.acceleration_model.max_acceleration, uav.total_mass_g
    )
    assert _predicted_v(a) == pytest.approx(2.02, abs=0.02)


def test_ablation_floor_is_load_bearing():
    """Without the braking floor, the over-loaded UAV-B cannot brake at
    all — yet the paper flew it at 1.5 m/s.  The floor is what lets the
    model cover all four validation drones."""
    uav_b = custom_s500("B")
    bare = ThrustMarginModel(
        total_thrust_g=uav_b.total_thrust_g, braking_pitch_deg=0.0
    )
    with pytest.raises(InfeasibleDesignError):
        bare.max_acceleration(uav_b.total_mass_g)
    # With the floor: ~1.5 m/s, matching the paper's measurement.
    assert _predicted_v(uav_b.max_acceleration) == pytest.approx(
        1.50, abs=0.02
    )


def test_ablation_pitch_envelope_overpredicts():
    """The altitude-holding envelope uses the full rated thrust tilted,
    predicting ~2.4x the velocity the flights showed for UAV-A — the
    margin model is the one consistent with the validation data."""
    uav_a = custom_s500("A")
    envelope = PitchEnvelopeModel(
        total_thrust_g=uav_a.total_thrust_g, max_pitch_deg=89.0
    )
    a_envelope = envelope.max_acceleration(uav_a.total_mass_g)
    a_margin = uav_a.max_acceleration
    assert a_envelope > 4.0 * a_margin
    assert _predicted_v(a_envelope) > 2.0 * _predicted_v(a_margin)
