"""Benchmark: regenerate Fig. 5 (safety curve + F-1 roofline)."""

from __future__ import annotations

import pytest

from repro.experiments import fig05


def test_bench_fig05(benchmark):
    result = benchmark(fig05.run)
    comparisons = {c.quantity: c for c in result.comparisons}
    assert "98.0" in comparisons["knee-point throughput"].measured
    assert result.figure is not None


def test_bench_fig05_curve_only(benchmark):
    """The raw Eq. 4 sweep is the hot inner loop of every figure."""
    from repro.core.sweep import RooflineCurve

    curve = benchmark(
        RooflineCurve.evaluate, 10.0, 50.0, 0.1, 10_000.0, 2048
    )
    assert len(curve) == 2048
    assert curve.roof == pytest.approx(31.6228, abs=1e-3)
