"""Benchmark: the Sec. IV validation campaign (predicted vs flown)."""

from __future__ import annotations

import pytest

from repro.validation.flight_tests import (
    predicted_safe_velocity,
    run_validation_campaign,
)


def test_bench_predictions(benchmark):
    """The analytic side: Table I -> predicted safe velocities."""
    velocities = benchmark(
        lambda: {v: predicted_safe_velocity(v) for v in "ABCD"}
    )
    paper = {"A": 2.13, "B": 1.51, "C": 1.58, "D": 1.53}
    for variant, expected in paper.items():
        assert velocities[variant] == pytest.approx(expected, rel=0.06)


def test_bench_campaign(benchmark):
    """The simulated-flight side (1 trial per velocity for speed)."""
    campaign = benchmark.pedantic(
        lambda: run_validation_campaign(trials=1, seed=7),
        rounds=1,
        iterations=1,
    )
    errors = [row.error_pct for row in campaign.values()]
    # The paper's optimistic band: each drone 5-10 %; allow <= 15 %.
    assert all(0.0 < e <= 15.0 for e in errors)
    assert max(errors) >= 4.0  # the model is measurably optimistic
