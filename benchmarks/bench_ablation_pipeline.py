"""Ablation: pipeline execution semantics (DESIGN.md Sec. 7).

Eq. 1 (fully overlapped stages) vs Eq. 2 (strictly sequential) bound
the achievable action throughput; the DES realizes both.  This
ablation measures the gap — the throughput a stack forfeits by running
its sensor/compute/control loop serially, as naive ROS nodes often do.
"""

from __future__ import annotations

import pytest

from repro.pipeline.analysis import verify_bottleneck_law
from repro.pipeline.jitter import GaussianJitter


def test_bench_bottleneck_check(benchmark):
    check = benchmark.pedantic(
        lambda: verify_bottleneck_law(60.0, 30.0, 1000.0, duration_s=20.0),
        rounds=1,
        iterations=1,
    )
    assert check.overlapped_error < 0.05
    assert check.sequential_error < 0.05


def test_ablation_overlap_gap():
    """With a 60 FPS sensor and 30 Hz compute, overlapping buys ~1.5x
    throughput over the serial loop — the crossover the ablation pins."""
    check = verify_bottleneck_law(60.0, 30.0, 1000.0, duration_s=20.0)
    gain = (
        check.overlapped.action_throughput_hz
        / check.sequential.action_throughput_hz
    )
    analytic_gain = (1 / 60 + 1 / 30 + 1 / 1000) * 30.0
    assert gain == pytest.approx(analytic_gain, rel=0.1)
    assert gain > 1.4


def test_ablation_jitter_robustness():
    """Eq. 3 keeps holding under 10 % Gaussian stage jitter — the
    analytic model's determinism assumption is not load-bearing."""
    check = verify_bottleneck_law(
        60.0, 30.0, 1000.0, duration_s=25.0,
        jitter=GaussianJitter(sigma=0.1), seed=5,
    )
    assert check.overlapped_error < 0.1
