"""Benchmark: regenerate Fig. 14 (case C: dual modular redundancy)."""

from __future__ import annotations

import pytest

from repro.experiments import fig14


def test_bench_fig14(benchmark):
    result = benchmark(fig14.run)
    comparisons = {c.quantity: c for c in result.comparisons}
    drop = float(
        comparisons["safe-velocity drop from DMR"].measured.rstrip("%")
    )
    assert drop == pytest.approx(33.0, abs=0.5)
    # The reliability column must favor DMR.
    simplex_row, dmr_row = result.table_rows
    assert float(dmr_row[4]) < float(simplex_row[4])
