"""Benchmark: the cost of observability (repro.obs) on real studies.

Two measurements:

* **obs-overhead** — what tracing adds to a chunked knob-grid study
  (the ``--trace`` path: spans, counters, per-shard accounting).  The
  acceptance bar: < 2% end-to-end at 100k points.

  Tracing costs a fixed ~tens of microseconds per *shard*, which on
  this container is far below the run-to-run noise of a ~25ms study
  (one scheduler preemption is ~1ms ≈ 4%), so a naive traced-vs-
  untraced subtraction at full scale cannot resolve it.  The bench
  measures differentially instead: the same study shape amplified to
  hundreds of one-row shards makes the per-shard cost ~30% of the
  runtime (a high-signal pair), and that marginal cost scales by the
  real study's shard count against its untraced best time:

      overhead = (amp_on - amp_off) / amp_shards * n_shards / off_s

  The CI gate uses ``amp_ratio`` — the amplified pair's own ratio,
  i.e. tracing overhead per shard relative to a minimal one-row
  shard's full cost — which is machine-normalized and has the same
  high signal on a noisy runner.  The *untraced* run exercises the
  exact instrumented code paths with ``tracer=None``, so the committed
  ``bench_batch``/``bench_executor`` baselines double as the
  no-op-path regression gate.
* **obs-events** — raw tracer throughput: spans recorded per second
  (``record_clock``) and events exported per second (``to_events``),
  an ungated capacity figure for sizing per-shard instrumentation.

``REPRO_BENCH_SMOKE=1`` shrinks the grids and disables the timing
assertion; ``REPRO_RECORD_BENCH=1`` / ``REPRO_BENCH_OUT=<dir>`` record
rows to ``benchmarks/results/bench_obs.json`` or ``<dir>`` (see
``_recording.py``).
"""

from __future__ import annotations

import math
import time

import numpy as np

from _recording import GATE, SMOKE, record
from repro.batch import default_chunk_rows
from repro.obs import Tracer
from repro.study import DesignSpec, StudySpec, run_study, study_size

#: The acceptance bar: end-to-end tracing overhead at 100k points.
MAX_TRACER_OVERHEAD = 0.02

if SMOKE:
    PER_AXIS = 10 if GATE else 4  # 1000 / 64 points
else:
    PER_AXIS = 47  # 103,823 points (the "100k" row)

#: One-row shards in the amplified differential pair.
AMP_SHARDS = 128 if GATE else 32 if SMOKE else 256

REPEATS = 3 if SMOKE else 5

EVENT_COUNT = 2_000 if SMOKE else 200_000


def _spec(per_axis: int) -> StudySpec:
    return StudySpec(
        design=DesignSpec.knob_axes(
            axes={
                "compute_tdp_w": tuple(np.linspace(1.0, 30.0, per_axis)),
                "compute_runtime_s": tuple(
                    np.geomspace(0.002, 0.5, per_axis)
                ),
                "payload_weight_g": tuple(
                    np.linspace(0.0, 500.0, per_axis)
                ),
            }
        )
    )


def _amp_spec(n_points: int) -> StudySpec:
    """A study that shatters into ``n_points`` one-row shards."""
    return StudySpec(
        design=DesignSpec.knob_axes(
            axes={
                "compute_tdp_w": tuple(np.linspace(1.0, 30.0, n_points))
            }
        )
    )


def _best_of(fn, repeats: int = REPEATS) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_tracer_overhead():
    """A traced chunked study must cost < 2% over the untraced run."""
    spec = _spec(PER_AXIS)
    points = study_size(spec)
    # The library's own serial chunking for this grid (executor=None).
    chunk = default_chunk_rows(points, 1)
    n_shards = math.ceil(points / chunk)

    off_s = _best_of(
        lambda: run_study(spec, cache=None, chunk_rows=chunk)
    )

    def traced():
        tracer = Tracer()
        result = run_study(
            spec, cache=None, chunk_rows=chunk, tracer=tracer
        )
        assert result.telemetry is not None
        return tracer

    on_s = _best_of(traced)
    tracer = traced()

    # The amplified differential pair: identical study machinery, one
    # row per shard, so per-shard tracing cost dominates the delta.
    amp = _amp_spec(AMP_SHARDS)
    amp_off_s = _best_of(
        lambda: run_study(amp, cache=None, chunk_rows=1)
    )
    amp_on_s = _best_of(
        lambda: run_study(amp, cache=None, chunk_rows=1, tracer=Tracer())
    )
    per_shard_s = max(0.0, amp_on_s - amp_off_s) / AMP_SHARDS
    amp_ratio = max(0.0, amp_on_s / amp_off_s - 1.0)
    overhead = per_shard_s * n_shards / off_s
    row = {
        "points": points,
        "chunk_rows": chunk,
        "shards": n_shards,
        "spans": len(tracer.spans),
        "off_s": round(off_s, 6),
        "on_s": round(on_s, 6),
        "amp_shards": AMP_SHARDS,
        "amp_off_s": round(amp_off_s, 6),
        "amp_on_s": round(amp_on_s, 6),
        "per_shard_us": round(per_shard_s * 1e6, 2),
        "amp_ratio": round(amp_ratio, 4),
        "overhead": round(overhead, 4),
    }
    print(
        f"[obs-overhead] {points:>7} points x {n_shards} shards: "
        f"off {off_s:.4f}s, traced {per_shard_s * 1e6:.1f}us/shard "
        f"({overhead:+.2%} end-to-end, amp_ratio {amp_ratio:.3f})"
    )
    record("bench_obs.json", "obs-overhead", [row])
    # Sanity on the traced run itself, any size: phases covered and
    # every grid row accounted for exactly once.
    names = set(tracer.span_names())
    assert {"study.compile", "shard.evaluate", "study.merge",
            "study.select"} <= names
    assert tracer.counters_snapshot()["rows.evaluated"] == points
    if SMOKE:
        return
    assert overhead < MAX_TRACER_OVERHEAD, row


def test_bench_event_throughput():
    """Raw span record/export rates (capacity figure, never gated)."""
    tracer = Tracer()
    origin = tracer.epoch

    def burst():
        for i in range(EVENT_COUNT):
            tracer.record_clock(
                "shard.evaluate", origin, origin + 1e-6, rows=i
            )

    start = time.perf_counter()
    burst()
    record_s = time.perf_counter() - start
    start = time.perf_counter()
    events = tracer.to_events()
    export_s = time.perf_counter() - start
    assert len(events) == EVENT_COUNT
    row = {
        "points": EVENT_COUNT,
        "record_s": round(record_s, 6),
        "export_s": round(export_s, 6),
        "events_per_s": round(EVENT_COUNT / record_s),
    }
    print(
        f"[obs-events] {EVENT_COUNT:>7} spans: record {record_s:.4f}s "
        f"({row['events_per_s']:,} /s), export {export_s:.4f}s"
    )
    record("bench_obs.json", "obs-events", [row])
