#!/usr/bin/env python
"""Fail CI when a freshly recorded benchmark run regresses the baseline.

Usage (what the CI ``bench`` job runs)::

    REPRO_BENCH_SMOKE=1 REPRO_BENCH_OUT=bench-out \\
        python -m pytest benchmarks/bench_batch.py \\
                         benchmarks/bench_executor.py -q -s   # x3
    python benchmarks/check_regression.py --current bench-out

The committed baselines live in ``benchmarks/results/*.json`` (a list
of entries per file, each ``{benchmark, smoke, cpu_count, rows}`` —
see ``_recording.py``).  For every ``(file, benchmark, smoke, points)``
coordinate present in both the current run and the baseline, the
*medians* of the gated metric are compared and any regression beyond
``--threshold`` (default 25%) fails the run.

Two deliberate choices keep the gate meaningful on shared runners:

* Only **machine-normalized** metrics gate — speedups, overheads and
  peak-memory ratios, each measured against a same-process,
  same-machine counterpart inside the bench itself.  Raw seconds are
  recorded and reported but never gated (a slow runner is not a
  regression).
* Parallel-executor speedups only gate at *scale* (``points`` >=
  10k): below that, pool dispatch dominates and the ratio is noise.
  The smoke-speed gate rows are recorded at 1000 points for the
  engine/assembly/study metrics, where the measured run-to-run spread
  is comfortably inside the threshold.

Exit codes: 0 (no regressions), 1 (regression), 2 (bad invocation).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: benchmark name -> (gated metric key, direction, min points to gate).
METRICS = {
    "engine": ("speedup", "higher", 0),
    "assembly": ("speedup", "higher", 0),
    "study": ("overhead", "lower", 0),
    "executor-study": ("speedup", "higher", 10_000),
    "executor-topk": ("speedup", "higher", 10_000),
    "executor-serial": ("overhead", "lower", 10_000),
    "executor-memory": ("peak_ratio", "lower", 0),
    "obs-overhead": ("amp_ratio", "lower", 0),
    "serve-coalesce": ("hit_rate", "higher", 0),
    "serve-saturate": ("reject_rate", "higher", 0),
    "distrib-identity": ("match_rate", "higher", 0),
}

#: Absolute slack for lower-is-better metrics whose baseline sits near
#: zero (a 25% relative band around 0.01 would gate on noise).
#: ``amp_ratio`` (tracing cost per shard relative to a minimal one-row
#: shard) gets a wider band: its minima-of-3 smoke measurement swings
#: by ~0.1 on a noisy runner while a real per-shard regression
#: (doubling the instrumentation cost) moves it by ~0.2.
ABSOLUTE_SLACK = {"overhead": 0.05, "peak_ratio": 0.05, "amp_ratio": 0.08}

Key = Tuple[str, str, bool, int]


def load_values(directory: Path) -> Dict[Key, List[float]]:
    """Every gated metric value, keyed by (file, benchmark, smoke, points)."""
    values: Dict[Key, List[float]] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            entries = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(f"error: {path} is not valid JSON: {exc}")
        if not isinstance(entries, list):
            continue
        for entry in entries:
            benchmark = entry.get("benchmark")
            if benchmark not in METRICS:
                continue
            metric, _, _ = METRICS[benchmark]
            smoke = bool(entry.get("smoke", False))
            for row in entry.get("rows", ()):
                value = row.get(metric)
                points = row.get("points")
                if value is None or points is None:
                    continue
                key = (path.name, benchmark, smoke, int(points))
                values.setdefault(key, []).append(float(value))
    return values


def check(
    baseline: Dict[Key, List[float]],
    current: Dict[Key, List[float]],
    threshold: float,
) -> int:
    failures = 0
    compared = 0
    for key in sorted(current):
        file_name, benchmark, smoke, points = key
        metric, direction, min_points = METRICS[benchmark]
        label = (
            f"{benchmark}@{points}{' (smoke)' if smoke else ''} "
            f"[{metric}]"
        )
        if key not in baseline:
            print(f"  SKIP {label}: no comparable baseline")
            continue
        current_median = statistics.median(current[key])
        baseline_median = statistics.median(baseline[key])
        if points < min_points:
            print(
                f"  INFO {label}: {baseline_median:g} -> "
                f"{current_median:g} (below gating scale, not gated)"
            )
            continue
        compared += 1
        slack = ABSOLUTE_SLACK.get(metric, 0.0)
        if direction == "higher":
            bar = baseline_median * (1.0 - threshold)
            regressed = current_median < bar
        else:
            bar = baseline_median * (1.0 + threshold) + slack
            regressed = current_median > bar
        verdict = "FAIL" if regressed else "ok"
        print(
            f"  {verdict:>4} {label}: baseline {baseline_median:g}, "
            f"current {current_median:g} "
            f"({'floor' if direction == 'higher' else 'ceiling'} {bar:g})"
        )
        failures += int(regressed)
    print(
        f"{compared} metric(s) gated, {failures} regression(s) "
        f"beyond {threshold:.0%}"
    )
    if compared == 0:
        # A gate that compares nothing guards nothing: bench sizes or
        # recording keys drifted away from the committed baselines.
        # Fail loudly instead of going silently green forever.
        print(
            "error: no recorded metric matched any committed baseline "
            "coordinate — refresh benchmarks/results/ (REPRO_RECORD_BENCH=1 "
            "REPRO_BENCH_SMOKE=1) or fix the drifted bench sizes"
        )
        return 1
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate recorded benchmark medians against baselines"
    )
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "results"),
        help="directory of committed baseline JSON files",
    )
    parser.add_argument(
        "--current", required=True,
        help="directory a fresh run recorded into (REPRO_BENCH_OUT)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative regression allowed before failing (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error(
            f"--threshold must be in (0, 1), got {args.threshold}"
        )
    baseline_dir = Path(args.baseline)
    current_dir = Path(args.current)
    for name, directory in (
        ("--baseline", baseline_dir), ("--current", current_dir)
    ):
        if not directory.is_dir():
            parser.error(f"{name} directory {directory} does not exist")
    baseline = load_values(baseline_dir)
    current = load_values(current_dir)
    if not current:
        parser.error(
            f"--current directory {current_dir} holds no recorded rows"
        )
    return check(baseline, current, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
