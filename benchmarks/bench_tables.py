"""Benchmarks: regenerate Tables I-III and Fig. 2b."""

from __future__ import annotations

from repro.experiments import fig02b, tables


def test_bench_table1(benchmark):
    result = benchmark(tables.run_table1)
    payloads = {row[0]: float(row[4]) for row in result.table_rows}
    assert payloads["UAV-A"] == 590.0
    assert payloads["UAV-B"] == 800.0


def test_bench_table2(benchmark):
    result = benchmark(tables.run_table2)
    knob_names = {row[0] for row in result.table_rows}
    # All of Table II's knobs must be exposed.
    assert {
        "sensor_framerate_hz", "compute_tdp_w", "compute_runtime_s",
        "sensor_range_m", "drone_weight_g", "rotor_pull_g",
        "payload_weight_g",
    } <= knob_names


def test_bench_table3(benchmark):
    result = benchmark(tables.run_table3)
    assert len(result.table_rows) == 4  # four case studies


def test_bench_fig02b(benchmark):
    result = benchmark(fig02b.run)
    endurance = {row[0]: float(row[4]) for row in result.table_rows}
    # Shape: endurance grows with size class.
    assert endurance["nano"] < endurance["micro"] < endurance["mini"]
