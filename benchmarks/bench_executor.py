"""Benchmark: sharded/parallel execution vs the single-process engine.

Three comparisons, each asserting bitwise equivalence before timing:

* **executor-study** — a million-point knob-grid study through
  ``run_study`` single-process vs a warm 4-worker process pool
  (full-result merge: the IPC-heavy mode).
* **executor-topk** — the same grid reduced to its global top-16
  (:func:`repro.batch.top_k_sharded`): workers return only their local
  winners, so IPC is O(k) and the pool's parallelism shows through.
  This is the headline ``>= 3x on 4 workers`` row; the assertion only
  arms when the host actually exposes >= 4 usable CPUs (the recorded
  rows carry ``cpu_count`` so a 1-CPU container's honest numbers are
  never mistaken for a regression).
* **executor-memory** — ``tracemalloc`` peak of chunked streaming
  top-k vs full materialization, asserting chunked mode's peak is
  bounded by the chunk size (it shrinks with ``chunk_rows`` and stays
  a small fraction of the full-grid peak).

``REPRO_BENCH_SMOKE=1`` shrinks every grid and disables the timing
assertions (the equivalence assertions stay); ``REPRO_RECORD_BENCH=1``
/ ``REPRO_BENCH_OUT=<dir>`` record rows to
``benchmarks/results/bench_executor.json`` or ``<dir>`` (see
``_recording.py``).
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from _recording import GATE, SMOKE, record
from repro.batch import (
    ParallelExecutor,
    clear_default_cache,
    default_chunk_rows,
    top_k_sharded,
)
from repro.study import DesignSpec, StudySpec, run_study, study_size

N_WORKERS = 4
TOP_K = 16

#: The acceptance bar: parallel top-k at 1M points on 4 workers.
MIN_PARALLEL_SPEEDUP = 3.0

#: Chunked streaming must stay under this fraction of the full peak.
MAX_CHUNKED_PEAK_RATIO = 0.25

if SMOKE:
    PER_AXIS = 10 if GATE else 8  # 1000 / 512 points
else:
    PER_AXIS = 100  # 1,000,000 points


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _spec(per_axis: int) -> StudySpec:
    return StudySpec(
        design=DesignSpec.knob_axes(
            axes={
                "compute_tdp_w": tuple(np.linspace(1.0, 30.0, per_axis)),
                "compute_runtime_s": tuple(
                    np.geomspace(0.002, 0.5, per_axis)
                ),
                "payload_weight_g": tuple(
                    np.linspace(0.0, 500.0, per_axis)
                ),
            }
        )
    )


def _best_of(fn, repeats: int = 3) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _row(points: int, single_s: float, parallel_s: float) -> dict:
    return {
        "points": points,
        "workers": N_WORKERS,
        "cpu_count": _usable_cpus(),
        "single_s": round(single_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(single_s / parallel_s, 2),
    }


def test_bench_executor_full_merge():
    spec = _spec(PER_AXIS)
    points = study_size(spec)
    chunk = default_chunk_rows(points, N_WORKERS)
    single = run_study(spec, cache=None)
    with ParallelExecutor(n_workers=N_WORKERS, backend="process") as ex:
        ex.warm_up()
        parallel = run_study(
            spec, cache=None, executor=ex, chunk_rows=chunk
        )
        assert single.equals(parallel)  # bitwise, per the contract
        single_s = _best_of(lambda: run_study(spec, cache=None))
        parallel_s = _best_of(
            lambda: run_study(
                spec, cache=None, executor=ex, chunk_rows=chunk
            )
        )
    row = _row(points, single_s, parallel_s)
    print(
        f"[executor-study] {points:>8} points: single {single_s:.4f}s, "
        f"{N_WORKERS} workers {parallel_s:.4f}s ({row['speedup']}x, "
        f"{row['cpu_count']} cpus)"
    )
    record("bench_executor.json", "executor-study", [row])


def test_bench_executor_topk_speedup():
    spec = _spec(PER_AXIS)
    points = study_size(spec)
    chunk = default_chunk_rows(points, N_WORKERS)

    def single_run():
        return run_study(spec, cache=None).batch.top_k(TOP_K)

    with ParallelExecutor(n_workers=N_WORKERS, backend="process") as ex:
        ex.warm_up()

        def parallel_run():
            return top_k_sharded(
                spec, TOP_K, executor=ex, chunk_rows=chunk
            )

        from repro.io.serialization import batch_results_equal

        _, merged = parallel_run()
        assert batch_results_equal(single_run(), merged)
        single_s = _best_of(single_run)
        parallel_s = _best_of(parallel_run)
    row = _row(points, single_s, parallel_s)
    print(
        f"[executor-topk] {points:>8} points: single {single_s:.4f}s, "
        f"{N_WORKERS} workers {parallel_s:.4f}s ({row['speedup']}x, "
        f"{row['cpu_count']} cpus)"
    )
    record("bench_executor.json", "executor-topk", [row])
    if SMOKE or _usable_cpus() < N_WORKERS:
        return  # honest numbers are recorded either way
    if row["speedup"] < MIN_PARALLEL_SPEEDUP:
        # Shared runners jitter; re-measure once (fresh pool) before
        # declaring the bar missed.  A genuine regression fails twice.
        with ParallelExecutor(
            n_workers=N_WORKERS, backend="process"
        ) as retry_ex:
            retry_ex.warm_up()
            parallel_s = min(
                parallel_s,
                _best_of(
                    lambda: top_k_sharded(
                        spec, TOP_K, executor=retry_ex, chunk_rows=chunk
                    ),
                    repeats=5,
                ),
            )
        row = _row(points, single_s, parallel_s)
        print(f"[executor-topk] retry: {row['speedup']}x")
    assert row["speedup"] >= MIN_PARALLEL_SPEEDUP, row


def _peak_of(fn) -> int:
    clear_default_cache()
    before, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    return max(peak - before, 1)


def test_bench_executor_chunked_memory():
    per_axis = PER_AXIS if SMOKE else 80  # 512k points keeps this quick
    spec = _spec(per_axis)
    points = study_size(spec)
    chunk = max(16, points // 16)
    tracemalloc.start()
    try:
        chunk_peak = _peak_of(
            lambda: top_k_sharded(spec, TOP_K, chunk_rows=chunk)
        )
        half_chunk_peak = _peak_of(
            lambda: top_k_sharded(spec, TOP_K, chunk_rows=chunk // 2)
        )
        full_peak = _peak_of(lambda: run_study(spec, cache=None))
    finally:
        tracemalloc.stop()
    row = {
        "points": points,
        "chunk_rows": chunk,
        "chunk_peak_mb": round(chunk_peak / 1e6, 3),
        "half_chunk_peak_mb": round(half_chunk_peak / 1e6, 3),
        "full_peak_mb": round(full_peak / 1e6, 3),
        "peak_ratio": round(chunk_peak / full_peak, 4),
    }
    print(
        f"[executor-memory] {points:>8} points: full "
        f"{row['full_peak_mb']:.1f} MB, chunked({chunk}) "
        f"{row['chunk_peak_mb']:.1f} MB, chunked({chunk // 2}) "
        f"{row['half_chunk_peak_mb']:.1f} MB "
        f"(ratio {row['peak_ratio']})"
    )
    record("bench_executor.json", "executor-memory", [row])
    if SMOKE:
        return
    # Chunked mode's peak is bounded by the chunk, not the grid:
    # a small fraction of full materialization, and shrinking (with
    # slack for fixed overheads) as the chunk shrinks.
    assert row["peak_ratio"] < MAX_CHUNKED_PEAK_RATIO, row
    assert half_chunk_peak < 0.75 * chunk_peak, row


def test_bench_executor_serial_streaming_overhead():
    """Chunked serial streaming stays close to the one-pass engine
    (it is the memory-bound mode, not a parallelism mode)."""
    spec = _spec(PER_AXIS)
    points = study_size(spec)
    chunk = default_chunk_rows(points, N_WORKERS)
    single = run_study(spec, cache=None)
    chunked = run_study(spec, cache=None, chunk_rows=chunk)
    assert single.equals(chunked)
    single_s = _best_of(lambda: run_study(spec, cache=None))
    chunked_s = _best_of(
        lambda: run_study(spec, cache=None, chunk_rows=chunk)
    )
    row = {
        "points": points,
        "chunk_rows": chunk,
        "single_s": round(single_s, 6),
        "chunked_s": round(chunked_s, 6),
        "overhead": round(chunked_s / single_s - 1.0, 4),
    }
    print(
        f"[executor-serial] {points:>8} points: single {single_s:.4f}s, "
        f"chunked {chunked_s:.4f}s ({row['overhead']:+.1%} overhead)"
    )
    record("bench_executor.json", "executor-serial", [row])
    if not SMOKE:
        # Streaming pays per-chunk assembly plus one concat copy;
        # anything past 2x the one-pass engine means a real regression.
        assert row["overhead"] < 1.0, row
