"""Shared benchmark-recording helpers (not collected as a bench).

Two environment knobs control recording:

* ``REPRO_RECORD_BENCH=1`` — append entries to the *committed*
  baselines under ``benchmarks/results/`` (how the per-revision
  trajectory in the repo keeps populating).
* ``REPRO_BENCH_OUT=<dir>`` — append entries to ``<dir>`` instead
  (how CI records a fresh run for the regression gate and the
  workflow artifact, without touching the checkout).

Unlike the pre-gate recorder, smoke runs record too: every entry is
stamped with its ``smoke`` flag (and the host's ``cpu_count``), and
``check_regression.py`` only ever compares entries whose
``(benchmark, smoke, points)`` coordinates match, so tiny smoke rows
can never masquerade as full-scale baselines.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import List

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
OUT_DIR = os.environ.get("REPRO_BENCH_OUT")

#: Gate mode: a smoke-speed run that *records* (for the CI regression
#: gate, or to refresh its committed baselines).  Sizes are bumped
#: from "tiny" to "small" (e.g. 64 -> 1000 points) because
#: machine-normalized ratios at tiny N are too noisy to gate.
GATE = SMOKE and bool(OUT_DIR or os.environ.get("REPRO_RECORD_BENCH"))


def record(results_file: str, benchmark: str, rows: List[dict]) -> None:
    """Append one benchmark entry, when recording is enabled."""
    if not (os.environ.get("REPRO_RECORD_BENCH") or OUT_DIR):
        return
    directory = Path(OUT_DIR) if OUT_DIR else RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / results_file
    history = json.loads(path.read_text()) if path.exists() else []
    history.append(
        {
            "recorded_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "benchmark": benchmark,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "smoke": SMOKE,
            "rows": rows,
        }
    )
    path.write_text(json.dumps(history, indent=2) + "\n")
