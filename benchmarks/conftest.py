"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact (or exercises one
substrate) and asserts its shape invariants, so a benchmark run is
also a reproduction run.
"""
