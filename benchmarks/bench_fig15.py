"""Benchmark: regenerate Fig. 15 (case D: full-system sweep)."""

from __future__ import annotations

from repro.experiments import fig15


def test_bench_fig15(benchmark):
    result = benchmark(fig15.run)
    comparisons = {c.quantity: c for c in result.comparisons}
    assert "3.3x" in comparisons[
        "Ras-Pi DroNet speedup needed (Pelican)"
    ].measured
    assert "660x" in comparisons[
        "Ras-Pi CAD2RL speedup needed (Pelican)"
    ].measured
    # Every design point is classified; both bound kinds occur.
    bounds = {row[6] for row in result.table_rows}
    assert {"compute", "physics"} <= bounds
    assert len(result.table_rows) == 24  # 2 UAVs x 3 computes x 4 algos
