"""Benchmarks for the executable SPA substrate (mapping / planning /
closed-loop navigation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autonomy.mapping import OccupancyGrid
from repro.autonomy.planning import astar
from repro.autonomy.spa_profile import profile_spa_stages
from repro.sim.corridor import CorridorWorld, navigate_corridor


def test_bench_scan_integration(benchmark):
    grid = OccupancyGrid(20.0, 20.0, resolution_m=0.1)
    angles = list(np.linspace(0, 2 * np.pi, 180, endpoint=False))
    ranges = [6.0] * 180

    benchmark(
        grid.integrate_scan, (10.0, 10.0), angles, ranges, 8.0
    )
    assert grid.known_fraction > 0.0


def test_bench_astar_200x200(benchmark):
    rng = np.random.default_rng(0)
    blocked = rng.random((200, 200)) < 0.2
    blocked[0, 0] = False
    blocked[199, 199] = False

    def plan():
        try:
            return astar(blocked, (0, 0), (199, 199))
        except Exception:
            return []

    path = benchmark(plan)
    assert isinstance(path, list)


def test_bench_spa_profile(benchmark):
    profile = benchmark.pedantic(
        lambda: profile_spa_stages(
            world_size_m=15.0, scan_beams=120, repeats=2
        ),
        rounds=1,
        iterations=1,
    )
    # Structure check: planning dominates, as in MAVBench on the TX2.
    assert profile.stage_latency_s["planning"] > (
        profile.stage_latency_s["control"]
    )


def test_bench_corridor_crossing(benchmark):
    world = CorridorWorld(seed=3)
    result = benchmark.pedantic(
        lambda: navigate_corridor(world, velocity=3.0, f_action_hz=5.0),
        rounds=1,
        iterations=1,
    )
    assert result.reached_goal


def test_corridor_decision_rate_shape():
    """Shape invariant: at 6 m/s the outcome flips with decision rate."""
    world = CorridorWorld(seed=3)
    assert navigate_corridor(world, 6.0, f_action_hz=0.5).collided
    assert navigate_corridor(world, 6.0, f_action_hz=5.0).reached_goal
