"""Benchmark: distributed studies (repro.distrib) as a fleet.

Two measurements over one shared work dir (threads standing in for
hosts — the protocol only sees the filesystem, so thread-workers
exercise exactly the claim/steal/heartbeat paths real hosts do):

* **distrib-identity** — a 3-worker fleet (initiator + 2 joiners)
  finishing a study whose shard 0 is held by a pre-seeded *ghost
  lease* (a crashed worker that will never heartbeat again).  The
  gated ``match_rate`` is 1.0 iff the merged result is byte-identical
  to the single-host run *and* the finished dir holds zero lease
  files — deterministically 1.0 while the protocol works and 0.0 the
  moment recovery or the merge breaks, which is what a regression
  gate wants.  Raw seconds (serial vs fleet) ride along ungated.
* **distrib-claims** — lease-layer accounting for the same run:
  total shards computed across the fleet (duplicate work shows up as
  the excess over ``n_shards``), steals, and wait polls.  Recorded
  for the trajectory, never gated (contention is scheduler weather).

``REPRO_BENCH_SMOKE=1`` shrinks the grid; ``REPRO_RECORD_BENCH=1`` /
``REPRO_BENCH_OUT=<dir>`` record rows to
``benchmarks/results/bench_distrib.json`` or ``<dir>``.
"""

from __future__ import annotations

import threading
import warnings
from time import perf_counter

from _recording import SMOKE, record

from repro.batch.executor import CheckpointStore, iter_chunks
from repro.distrib import (
    DistributedExecutor,
    LeaseStore,
    publish_spec,
    resolve_study_manifest,
    run_worker,
)
from repro.obs import Tracer
from repro.study import DesignSpec, StudySpec, run_study

N_ROWS = 64 if SMOKE else 2048
CHUNK_ROWS = 8 if SMOKE else 64
N_JOINERS = 2

#: The ghost's declared ttl: tiny, so the fleet steals immediately.
GHOST_TTL_S = 0.05


def _spec(n_rows: int) -> StudySpec:
    values = [1.0 + 0.01 * i for i in range(n_rows)]
    return StudySpec(
        design=DesignSpec.knob_axes(axes={"compute_tdp_w": values})
    )


def test_bench_distrib_identity(tmp_path):
    """Fleet + ghost lease vs single host: byte-identical, no litter."""
    spec = _spec(N_ROWS)
    started = perf_counter()
    serial = run_study(spec)
    serial_s = perf_counter() - started

    shards = list(iter_chunks(spec, chunk_rows=CHUNK_ROWS))
    n_shards = len(shards)
    manifest, _ = resolve_study_manifest(tmp_path, shards)
    CheckpointStore.open(tmp_path, manifest)
    publish_spec(tmp_path, spec)
    ghost = LeaseStore(
        tmp_path, manifest.digest, "ghost", lease_ttl_s=GHOST_TTL_S
    )
    assert ghost.try_claim(0) is not None

    tracer = Tracer()
    reports = []

    def join(i: int) -> None:
        reports.append(
            run_worker(
                tmp_path,
                worker_id=f"joiner-{i}",
                lease_ttl_s=10.0,
                poll_interval_s=0.02,
                wait_s=30.0,
                tracer=tracer,
            )
        )

    threads = [
        threading.Thread(target=join, args=(i,)) for i in range(N_JOINERS)
    ]
    started = perf_counter()
    for thread in threads:
        thread.start()
    with warnings.catch_warnings():
        # The ghost's expiry warning is this bench's expected path.
        warnings.simplefilter("ignore", RuntimeWarning)
        with DistributedExecutor(
            tmp_path,
            worker_id="initiator",
            lease_ttl_s=10.0,
            poll_interval_s=0.02,
        ) as executor:
            distributed = run_study(
                spec, executor=executor, chunk_rows=CHUNK_ROWS, tracer=tracer
            )
    for thread in threads:
        thread.join()
    distrib_s = perf_counter() - started

    orphans = len(list((tmp_path / "leases").glob("*.lease.json")))
    # equals() is bitwise on every column; telemetry (span timings,
    # which legitimately differ run-to-run) is excluded by contract.
    identical = distributed.equals(serial)
    match_rate = 1.0 if identical and orphans == 0 else 0.0
    counters = tracer.counters_snapshot()
    computed_total = counters.get("distrib.shards.computed", 0)

    record(
        "bench_distrib.json",
        "distrib-identity",
        [
            {
                "points": N_ROWS,
                "chunk_rows": CHUNK_ROWS,
                "workers": N_JOINERS + 1,
                "n_shards": n_shards,
                "match_rate": match_rate,
                "orphaned_leases": orphans,
                "serial_s": serial_s,
                "distrib_s": distrib_s,
            }
        ],
    )
    record(
        "bench_distrib.json",
        "distrib-claims",
        [
            {
                "points": N_ROWS,
                "n_shards": n_shards,
                "computed_total": computed_total,
                "duplicate_shards": max(0, computed_total - n_shards),
                "stolen": counters.get("distrib.leases.stolen", 0),
                "swept": counters.get("distrib.leases.swept", 0),
                "wait_polls": counters.get("distrib.wait_polls", 0),
            }
        ],
    )
    print(
        f"\ndistrib-identity: {N_JOINERS + 1} workers, {n_shards} shards "
        f"(+1 ghost lease): match_rate={match_rate:.0f}, "
        f"computed_total={computed_total}, "
        f"stolen={counters.get('distrib.leases.stolen', 0)}, "
        f"serial={serial_s:.3f}s fleet={distrib_s:.3f}s"
    )
    assert identical, "distributed result diverged from single-host run"
    assert orphans == 0, f"{orphans} lease file(s) left after completion"
    assert computed_total >= n_shards
