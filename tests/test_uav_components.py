"""Tests for UAV component dataclasses."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.uav.components import (
    Battery,
    ComputePlatform,
    FlightControllerBoard,
    Frame,
    Motor,
    Sensor,
)


class TestFrame:
    def test_disk_area(self):
        frame = Frame(name="t", base_mass_g=500.0, size_mm=450.0,
                      rotor_count=4, rotor_radius_m=0.1)
        assert frame.disk_area_m2 == pytest.approx(4 * math.pi * 0.01)

    def test_minimum_rotor_count(self):
        with pytest.raises(ConfigurationError):
            Frame(name="t", base_mass_g=500.0, size_mm=450.0, rotor_count=2)

    def test_invalid_mass(self):
        with pytest.raises(ConfigurationError):
            Frame(name="t", base_mass_g=0.0, size_mm=450.0)


class TestSensor:
    def test_sample_period(self):
        sensor = Sensor(name="cam", framerate_hz=60.0, range_m=10.0)
        assert sensor.sample_period_s == pytest.approx(1 / 60)

    def test_with_range_copies(self):
        sensor = Sensor(name="cam", framerate_hz=60.0, range_m=10.0)
        longer = sensor.with_range(20.0)
        assert longer.range_m == 20.0
        assert sensor.range_m == 10.0
        assert longer.framerate_hz == sensor.framerate_hz

    def test_with_framerate_copies(self):
        sensor = Sensor(name="cam", framerate_hz=60.0, range_m=10.0)
        assert sensor.with_framerate(30.0).framerate_hz == 30.0

    def test_invalid_framerate(self):
        with pytest.raises(ConfigurationError):
            Sensor(name="cam", framerate_hz=0.0, range_m=10.0)


class TestBattery:
    def test_energy(self):
        battery = Battery(name="3s", capacity_mah=5000.0, voltage_v=11.1)
        assert battery.energy_wh == pytest.approx(55.5)

    def test_usable_energy(self):
        battery = Battery(
            name="3s", capacity_mah=1000.0, voltage_v=10.0,
            usable_fraction=0.8,
        )
        assert battery.usable_energy_wh == pytest.approx(8.0)

    def test_invalid_usable_fraction(self):
        with pytest.raises(ConfigurationError):
            Battery(name="b", capacity_mah=100.0, voltage_v=3.7,
                    usable_fraction=1.0)


class TestComputePlatform:
    def _platform(self, **kwargs) -> ComputePlatform:
        defaults = dict(
            name="test",
            mass_g=280.0,
            tdp_w=30.0,
            peak_gflops=1000.0,
            mem_bandwidth_gbs=100.0,
        )
        defaults.update(kwargs)
        return ComputePlatform(**defaults)

    def test_heatsink_sized_from_tdp(self):
        platform = self._platform()
        assert platform.heatsink_mass_g == pytest.approx(162.0, abs=1.0)
        assert platform.flight_mass_g == pytest.approx(442.0, abs=1.0)

    def test_no_heatsink_option(self):
        platform = self._platform(needs_heatsink=False)
        assert platform.heatsink_mass_g == 0.0
        assert platform.flight_mass_g == 280.0

    def test_carrier_mass_included(self):
        platform = self._platform(carrier_mass_g=60.0, needs_heatsink=False)
        assert platform.flight_mass_g == 340.0

    def test_with_tdp_shrinks_heatsink(self):
        platform = self._platform()
        rebinned = platform.with_tdp(15.0)
        assert rebinned.tdp_w == 15.0
        assert rebinned.heatsink_mass_g < platform.heatsink_mass_g
        assert rebinned.name == "test-15w"
        assert platform.tdp_w == 30.0  # original untouched

    def test_with_tdp_custom_name(self):
        assert self._platform().with_tdp(5.0, name="tiny").name == "tiny"


class TestMotorAndFC:
    def test_motor_validation(self):
        with pytest.raises(ConfigurationError):
            Motor(name="m", rated_pull_g=0.0)
        motor = Motor(name="m", rated_pull_g=435.0, kv=920.0)
        assert motor.kv == 920.0

    def test_fc_defaults(self):
        fc = FlightControllerBoard(name="fmu")
        assert fc.loop_rate_hz == 1000.0
        assert fc.mass_g == 0.0
