"""Tests for repro.batch.assembly: the columnar Knobs->UAV->F1 chain.

The load-bearing property: a :class:`KnobMatrix` (and
:func:`assemble_configurations`) must be numerically identical — 1e-9,
property-tested — to looping ``Knobs.build_uav().f1(...)`` /
reading per-vehicle scalar properties.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    KnobMatrix,
    assemble_configurations,
    evaluate_matrix,
)
from repro.batch.assembly import KNOB_COLUMNS
from repro.core.knee import DEFAULT_KNEE_FRACTION
from repro.core.model import F1Model
from repro.dse.space import DesignSpace
from repro.errors import ConfigurationError, InfeasibleDesignError
from repro.skyline.knobs import Knobs
from repro.skyline.sweep import SWEEPABLE_KNOBS
from repro.uav.presets import custom_s500, dji_spark

EQ_TOL = 1e-9

knob_sets = st.builds(
    Knobs,
    sensor_framerate_hz=st.floats(min_value=1.0, max_value=240.0),
    compute_tdp_w=st.floats(min_value=0.2, max_value=60.0),
    compute_runtime_s=st.floats(min_value=1e-3, max_value=2.0),
    sensor_range_m=st.floats(min_value=0.5, max_value=50.0),
    drone_weight_g=st.floats(min_value=100.0, max_value=5000.0),
    rotor_pull_g=st.floats(min_value=50.0, max_value=2000.0),
    payload_weight_g=st.floats(min_value=0.0, max_value=1000.0),
    compute_mass_g=st.floats(min_value=1.0, max_value=500.0),
)


def scalar_model(knobs: Knobs) -> F1Model:
    """The pre-assembly idiom: per-point UAV build + F-1 model."""
    return knobs.build_uav().f1(knobs.f_compute_hz)


def assert_matches_scalar_chain(matrix, result, knob_sets_list) -> None:
    for i, knobs in enumerate(knob_sets_list):
        uav = knobs.build_uav()
        model = uav.f1(knobs.f_compute_hz)
        assert matrix.sensing_range_m[i] == pytest.approx(
            model.sensing_range_m, abs=EQ_TOL
        )
        assert matrix.a_max[i] == pytest.approx(
            uav.max_acceleration, abs=EQ_TOL
        )
        assert matrix.f_sensor_hz[i] == pytest.approx(
            model.pipeline.f_sensor_hz, abs=EQ_TOL
        )
        assert matrix.f_compute_hz[i] == pytest.approx(
            model.pipeline.f_compute_hz, abs=EQ_TOL
        )
        assert matrix.f_control_hz[i] == pytest.approx(
            model.pipeline.f_control_hz, abs=EQ_TOL
        )
        assert result.safe_velocity[i] == pytest.approx(
            model.safe_velocity, abs=EQ_TOL
        )
        assert result.roof_velocity[i] == pytest.approx(
            model.roof_velocity, abs=EQ_TOL
        )
        assert result.knee_hz[i] == pytest.approx(
            model.knee.throughput_hz, abs=EQ_TOL
        )
        assert result.bound_at(i) is model.bound


class TestKnobMatrixEquivalence:
    @given(sets=st.lists(knob_sets, min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_random_knob_sets_match_scalar_assembly(self, sets):
        km = KnobMatrix.from_knobs(sets)
        matrix = km.assemble()
        result = evaluate_matrix(matrix, cache=None)
        assert_matches_scalar_chain(matrix, result, sets)

    @given(base=knob_sets, tdps=st.lists(
        st.floats(min_value=0.2, max_value=60.0), min_size=1, max_size=8
    ))
    @settings(max_examples=40, deadline=None)
    def test_from_base_single_knob_sweep_matches_loop(self, base, tdps):
        from dataclasses import replace

        km = KnobMatrix.from_base(base, compute_tdp_w=tdps)
        matrix = km.assemble()
        result = evaluate_matrix(matrix, cache=None)
        scalars = [replace(base, compute_tdp_w=t) for t in tdps]
        assert_matches_scalar_chain(matrix, result, scalars)

    def test_accounting_columns_match_scalar_properties(self):
        sets = [
            Knobs(),
            Knobs(compute_tdp_w=0.5),   # below the heatsink cutoff
            Knobs(compute_tdp_w=30.0, payload_weight_g=750.0),
        ]
        km = KnobMatrix.from_knobs(sets)
        for i, knobs in enumerate(sets):
            uav = knobs.build_uav()
            assert km.heatsink_mass_g[i] == pytest.approx(
                uav.compute.heatsink_mass_g, abs=EQ_TOL
            )
            assert km.compute_payload_g[i] == pytest.approx(
                uav.compute_payload_g, abs=EQ_TOL
            )
            assert km.total_mass_g[i] == pytest.approx(
                uav.total_mass_g, abs=EQ_TOL
            )
            assert km.total_thrust_g[i] == pytest.approx(
                uav.total_thrust_g, abs=EQ_TOL
            )
            assert km.max_acceleration[i] == pytest.approx(
                uav.max_acceleration, abs=EQ_TOL
            )

    def test_assemble_records_default_knee_rule(self):
        matrix = KnobMatrix.from_base(Knobs()).assemble()
        assert matrix.knee_fraction == DEFAULT_KNEE_FRACTION


class TestKnobMatrixConstruction:
    def test_knob_columns_track_sweepable_knobs(self):
        assert KNOB_COLUMNS == SWEEPABLE_KNOBS

    def test_scalars_broadcast_against_columns(self):
        km = KnobMatrix.from_base(
            Knobs(), compute_tdp_w=(5.0, 10.0, 15.0)
        )
        assert len(km) == 3
        assert km.drone_weight_g.tolist() == [1000.0] * 3
        assert km.compute_tdp_w.tolist() == [5.0, 10.0, 15.0]

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError, match="rotor_count"):
            KnobMatrix.from_base(Knobs(), rotor_count=(4, 6))
        with pytest.raises(ConfigurationError, match="unknown knob"):
            KnobMatrix.from_base(Knobs(), warp_factor=(1.0,))

    def test_incompatible_lengths_rejected(self):
        with pytest.raises(ConfigurationError, match="incompatible"):
            KnobMatrix.from_base(
                Knobs(),
                compute_tdp_w=(1.0, 2.0),
                payload_weight_g=(0.0, 1.0, 2.0),
            )

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_nonpositive_and_nonfinite_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            KnobMatrix.from_base(Knobs(), compute_tdp_w=(7.5, bad))

    def test_payload_may_be_zero_but_not_negative(self):
        km = KnobMatrix.from_base(Knobs(), payload_weight_g=(0.0, 100.0))
        assert len(km) == 2
        with pytest.raises(ConfigurationError, match="payload_weight_g"):
            KnobMatrix.from_base(Knobs(), payload_weight_g=(-1.0,))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            KnobMatrix.from_knobs([])
        with pytest.raises(ConfigurationError, match="at least one"):
            KnobMatrix.from_base(Knobs(), compute_tdp_w=())

    def test_mixed_rotor_counts_rejected(self):
        with pytest.raises(ConfigurationError, match="rotor counts"):
            KnobMatrix.from_knobs(
                [Knobs(rotor_count=4), Knobs(rotor_count=6)]
            )

    def test_invalid_rotor_count_rejected(self):
        with pytest.raises(ConfigurationError, match="rotor_count"):
            KnobMatrix.from_base(Knobs(rotor_count=6), rotor_count=2)

    def test_labels_must_match_rows(self):
        with pytest.raises(ConfigurationError, match="labels"):
            KnobMatrix.from_base(
                Knobs(), labels=("one",), compute_tdp_w=(1.0, 2.0)
            )
        km = KnobMatrix.from_base(
            Knobs(), labels=("a", "b"), compute_tdp_w=(1.0, 2.0)
        )
        assert km.label_at(1) == "b"
        assert KnobMatrix.from_base(Knobs()).label_at(0) == "#0"

    def test_columns_are_frozen(self):
        km = KnobMatrix.from_base(Knobs(), compute_tdp_w=(5.0, 10.0))
        with pytest.raises(ValueError):
            km.compute_tdp_w[0] = 1.0

    def test_knobs_at_round_trips(self):
        base = Knobs(rotor_count=6, payload_weight_g=123.0)
        km = KnobMatrix.from_base(base, compute_tdp_w=(5.0, 10.0))
        recovered = km.knobs_at(1)
        assert recovered == Knobs(
            rotor_count=6, payload_weight_g=123.0, compute_tdp_w=10.0
        )


class TestFleetAssembly:
    def test_heterogeneous_fleet_matches_scalar_properties(self):
        # Crosses component-derived payloads, Table I payload
        # overrides, a heatsinkless platform and varying braking pitch.
        space = DesignSpace(
            uav_names=(
                "dji-spark", "asctec-pelican", "custom-s500-b", "nano-uav",
            ),
            compute_names=("intel-ncs", "jetson-tx2", "jetson-agx-30w"),
            algorithm_names=("dronet",),
        )
        candidates = list(space.candidates())
        uavs = [c.uav for c in candidates]
        fleet = assemble_configurations(
            uavs, [c.f_compute_hz for c in candidates]
        )
        assert len(fleet) == len(candidates)
        for i, c in enumerate(candidates):
            assert fleet.total_mass_g[i] == pytest.approx(
                c.uav.total_mass_g, abs=EQ_TOL
            )
            assert fleet.total_thrust_g[i] == pytest.approx(
                c.uav.total_thrust_g, abs=EQ_TOL
            )
            assert fleet.compute_tdp_w[i] == c.uav.compute.tdp_w
            assert fleet.matrix.a_max[i] == pytest.approx(
                c.uav.max_acceleration, abs=EQ_TOL
            )
            assert fleet.matrix.f_compute_hz[i] == pytest.approx(
                c.f_compute_hz, abs=EQ_TOL
            )

    def test_redundancy_and_extra_payload_accounted(self):
        uav = dji_spark().with_redundancy(3).with_extra_payload(42.0)
        fleet = assemble_configurations([uav], [100.0])
        assert fleet.total_mass_g[0] == pytest.approx(
            uav.total_mass_g, abs=EQ_TOL
        )
        assert fleet.matrix.a_max[0] == pytest.approx(
            uav.max_acceleration, abs=EQ_TOL
        )

    def test_payload_override_preset_accounted(self):
        uav = custom_s500("D")
        fleet = assemble_configurations([uav], [5.0])
        assert fleet.total_mass_g[0] == pytest.approx(
            uav.total_mass_g, abs=EQ_TOL
        )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            assemble_configurations([], [])

    def test_infeasible_vehicle_raises_like_scalar_path(self):
        import re
        from dataclasses import replace

        overloaded = replace(
            dji_spark().with_extra_payload(50_000.0),
            braking_pitch_deg=0.0,
        )
        with pytest.raises(InfeasibleDesignError):
            _ = overloaded.max_acceleration  # scalar contract
        with pytest.raises(
            InfeasibleDesignError, match=re.escape(overloaded.name)
        ):
            assemble_configurations([overloaded], [100.0])
