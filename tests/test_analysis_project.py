"""Tests for reprolint v2: ProjectGraph, RPL007-009, cache, baseline, SARIF.

Covers the whole-program layer added on top of the per-file engine:

* :mod:`repro.analysis.graph` — module naming, import resolution
  (absolute, relative, re-export chains, cycles), summaries and their
  JSON round-trip, worker-entry resolution and call-graph reachability;
* the three interprocedural rules against their fixture mini-projects,
  including the PR-4 ``DEFAULT_CACHE`` fork-inheritance reproduction;
* the incremental cache — warm runs analyze nothing, a leaf edit
  re-analyzes exactly the leaf plus its dependents, and a cached rerun
  on an unchanged tree is at least 5x faster than a cold run;
* the baseline/ratchet workflow and the SARIF exporter;
* analyzer edge inputs: syntax errors, empty files, non-UTF-8 source;
* the new CLI flags.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis import (
    AnalysisCache,
    Analyzer,
    AnalyzerConfig,
    ModuleContext,
    ProjectGraph,
    extract_summary,
)
from repro.analysis import baseline as baselinelib
from repro.analysis import cli
from repro.analysis import sarif as sariflib
from repro.analysis.cache import compute_config_key
from repro.analysis.core import Finding
from repro.analysis.graph import ModuleSummary, module_name_for
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "data" / "reprolint_fixtures"
REPO_ROOT = Path(__file__).parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def write_tree(root: Path, files: Dict[str, str]) -> List[Path]:
    paths = []
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        paths.append(path)
    return paths


def build_graph(root: Path, files: Dict[str, str]) -> ProjectGraph:
    summaries = []
    for path in write_tree(root, files):
        module = ModuleContext(path, path.read_text(encoding="utf-8"))
        summaries.append(
            extract_summary(module, module_name_for(path), "deadbeef")
        )
    return ProjectGraph(summaries, AnalyzerConfig())


def rules_of(findings) -> List[str]:
    return sorted({finding.rule for finding in findings})


# ---------------------------------------------------------------------------
# module naming + graph resolution
# ---------------------------------------------------------------------------
class TestModuleNaming:
    def test_package_chain(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "",
            },
        )
        assert module_name_for(tmp_path / "pkg" / "sub" / "mod.py") == (
            "pkg.sub.mod"
        )
        assert module_name_for(tmp_path / "pkg" / "sub" / "__init__.py") == (
            "pkg.sub"
        )

    def test_standalone_file_is_its_stem(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("", encoding="utf-8")
        assert module_name_for(path) == "script"

    def test_src_repro_modules(self):
        assert module_name_for(SRC_REPRO / "units.py") == "repro.units"
        assert module_name_for(SRC_REPRO / "__init__.py") == "repro"


class TestProjectGraph:
    def test_resolves_through_reexport_chain(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "from .impl import work\n",
                "pkg/impl.py": "def work():\n    return 1\n",
                "pkg/user.py": (
                    "from . import work\n\n"
                    "def go():\n    return work()\n"
                ),
            },
        )
        resolved = graph.resolve_name("pkg.user", "work")
        assert resolved == ("symbol", "pkg.impl", "work")
        assert graph.resolve_function("pkg.user", "work") is not None

    def test_resolves_relative_imports_two_levels_up(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/core.py": "VALUE = 3\n",
                "pkg/deep/__init__.py": "",
                "pkg/deep/leaf.py": "from ..core import VALUE\n",
            },
        )
        assert graph.resolve_name("pkg.deep.leaf", "VALUE") == (
            "symbol",
            "pkg.core",
            "VALUE",
        )

    def test_import_cycle_resolution_terminates(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                # a re-exports from b, b re-exports the same name from
                # a: a true resolution cycle with no definition.
                "pkg/a.py": "from .b import ghost\n",
                "pkg/b.py": "from .a import ghost\n",
            },
        )
        assert graph.resolve_name("pkg.a", "ghost") is None
        assert graph.resolve_name("pkg.b", "ghost") is None

    def test_worker_entries_and_reachability(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/work.py": (
                    "def leaf():\n    return 1\n\n"
                    "def entry():\n    return leaf()\n"
                ),
                "pkg/pool.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n"
                    "from .work import entry\n\n"
                    "def fan_out():\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return pool.submit(entry).result()\n"
                ),
            },
        )
        entries = graph.worker_entries("submit")
        assert [key for key, _, _ in entries] == [("pkg.work", "entry")]
        reached = graph.reachable_from([key for key, _, _ in entries])
        assert ("pkg.work", "leaf") in reached
        chain = graph.witness_chain(reached, ("pkg.work", "leaf"))
        assert chain == ["entry", "leaf"]

    def test_dependents_map_reverses_import_edges(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/base.py": "X = 1\n",
                "pkg/mid.py": "from .base import X\n",
            },
        )
        dependents = graph.dependents_map()
        assert dependents["pkg.base"] == {"pkg.mid"}

    def test_summary_json_round_trip(self):
        source = (FIXTURES / "rpl007_violations.py").read_text(
            encoding="utf-8"
        )
        module = ModuleContext(FIXTURES / "rpl007_violations.py", source)
        summary = extract_summary(module, "rpl007_violations", "abc123")
        rebuilt = ModuleSummary.from_dict(summary.to_dict())
        assert rebuilt == summary

    def test_stale_summary_version_rejected(self):
        source = "X = 1\n"
        module = ModuleContext(Path("m.py"), source)
        summary = extract_summary(module, "m", "abc")
        document = summary.to_dict()
        document["version"] = -1
        assert ModuleSummary.from_dict(document) is None


# ---------------------------------------------------------------------------
# RPL007 — worker-state safety
# ---------------------------------------------------------------------------
class TestRPL007:
    def test_default_cache_bug_project_is_flagged(self):
        findings = Analyzer().check_paths([FIXTURES / "proj_rpl007_bad"])
        assert rules_of(findings) == ["RPL007"]
        (finding,) = findings
        assert "DEFAULT_CACHE" in finding.message
        assert finding.path.endswith("engine.py")
        assert "_evaluate_shard -> evaluate_matrix" in finding.message
        assert "fork-safe" in finding.message

    def test_initializer_reset_project_is_clean(self):
        findings = Analyzer().check_paths([FIXTURES / "proj_rpl007_clean"])
        assert findings == []

    def test_single_file_violation_and_escapes(self):
        bad = Analyzer().check_file(FIXTURES / "rpl007_violations.py")
        assert rules_of(bad) == ["RPL007"]
        assert "RESULT_CACHE" in bad[0].message
        clean = Analyzer().check_file(FIXTURES / "rpl007_clean.py")
        assert clean == []

    def test_lock_guarded_mutations_are_safe(self, tmp_path):
        findings = Analyzer().check_paths(
            [
                write_tree(
                    tmp_path,
                    {
                        "mod.py": (
                            "import threading\n"
                            "from concurrent.futures import "
                            "ProcessPoolExecutor\n\n"
                            "STATE = {}\n"
                            "_LOCK = threading.Lock()\n\n\n"
                            "def record(key, value):\n"
                            "    with _LOCK:\n"
                            "        STATE[key] = value\n\n\n"
                            "def worker(rows):\n"
                            "    return [STATE.get(str(r)) for r in rows]\n\n\n"
                            "def fan_out(shards):\n"
                            "    with ProcessPoolExecutor() as pool:\n"
                            "        return [pool.submit(worker, s) "
                            "for s in shards]\n"
                        )
                    },
                )[0]
            ]
        )
        assert findings == []

    def test_unlocked_variant_of_same_module_is_flagged(self, tmp_path):
        findings = Analyzer().check_paths(
            [
                write_tree(
                    tmp_path,
                    {
                        "mod.py": (
                            "from concurrent.futures import "
                            "ProcessPoolExecutor\n\n"
                            "STATE = {}\n\n\n"
                            "def record(key, value):\n"
                            "    STATE[key] = value\n\n\n"
                            "def worker(rows):\n"
                            "    return [STATE.get(str(r)) for r in rows]\n\n\n"
                            "def fan_out(shards):\n"
                            "    with ProcessPoolExecutor() as pool:\n"
                            "        return [pool.submit(worker, s) "
                            "for s in shards]\n"
                        )
                    },
                )[0]
            ]
        )
        assert rules_of(findings) == ["RPL007"]

    def test_suppression_comment_silences_rpl007(self, tmp_path):
        source = (FIXTURES / "rpl007_violations.py").read_text(
            encoding="utf-8"
        )
        source = source.replace(
            "RESULT_CACHE = {}",
            "RESULT_CACHE = {}  # reprolint: disable=RPL007",
        )
        path = tmp_path / "suppressed.py"
        path.write_text(source, encoding="utf-8")
        assert Analyzer().check_paths([path]) == []


# ---------------------------------------------------------------------------
# RPL008 — units-flow
# ---------------------------------------------------------------------------
class TestRPL008:
    def test_cross_module_ms_into_s_is_flagged(self):
        findings = Analyzer().check_paths([FIXTURES / "proj_rpl008"])
        assert rules_of(findings) == ["RPL008"]
        assert len(findings) == 3
        assert all(f.path.endswith("flight.py") for f in findings)
        positional, keyword, returned = findings
        assert "frame_time_ms" in positional.message
        assert "'dt_s'" in positional.message
        assert "total_time_s" in keyword.message
        assert "'frame_ms'" in returned.message

    def test_single_file_variants(self):
        findings = Analyzer().check_file(FIXTURES / "rpl008_violations.py")
        assert rules_of(findings) == ["RPL008"]
        messages = "\n".join(f.message for f in findings)
        assert "scale" in messages  # _s into _ms
        assert "energy" in messages  # cross-dimension positional
        assert "power" in messages  # cross-dimension keyword
        assert "payload_kg" in messages  # return-flow
        assert len(findings) == 4

    def test_matching_suffixes_and_splats_are_clean(self, tmp_path):
        findings = Analyzer().check_paths(
            [
                write_tree(
                    tmp_path,
                    {
                        "mod.py": (
                            "def hold(duration_s):\n"
                            "    return duration_s\n\n\n"
                            "def ok(hover_s, args):\n"
                            "    hold(hover_s)\n"
                            "    hold(*args)\n"
                            "    return hold(duration_s=hover_s)\n"
                        )
                    },
                )[0]
            ]
        )
        assert findings == []

    def test_decorated_callee_is_skipped(self, tmp_path):
        findings = Analyzer().check_paths(
            [
                write_tree(
                    tmp_path,
                    {
                        "mod.py": (
                            "import functools\n\n\n"
                            "@functools.lru_cache\n"
                            "def hold(duration_s):\n"
                            "    return duration_s\n\n\n"
                            "def use(wait_ms):\n"
                            "    return hold(wait_ms)\n"
                        )
                    },
                )[0]
            ]
        )
        assert findings == []


# ---------------------------------------------------------------------------
# RPL009 — export/reachability drift
# ---------------------------------------------------------------------------
class TestRPL009:
    def test_project_fixture_flags_every_variant(self):
        findings = Analyzer().check_paths([FIXTURES / "proj_rpl009"])
        assert rules_of(findings) == ["RPL009"]
        messages = "\n".join(f.message for f in findings)
        assert "removed_long_ago" in messages  # from-import drift
        assert "ghost_export" in messages  # __all__ ghost
        assert "_stale_normalizer" in messages  # dead private
        assert len(findings) == 3

    def test_single_file_fixture(self):
        findings = Analyzer().check_file(FIXTURES / "rpl009_violations.py")
        assert rules_of(findings) == ["RPL009"]
        assert len(findings) == 2

    def test_cyclic_imports_terminate_and_flag_missing_name(self):
        findings = Analyzer().check_paths([FIXTURES / "proj_cycle"])
        assert rules_of(findings) == ["RPL009"]
        (finding,) = findings
        assert "never_defined" in finding.message

    def test_dynamic_getattr_module_is_exempt(self, tmp_path):
        findings = Analyzer().check_paths(
            [
                write_tree(
                    tmp_path,
                    {
                        "pkg/__init__.py": "from .lazy import anything\n",
                        "pkg/lazy.py": (
                            "__all__ = ['whatever']\n\n\n"
                            "def __getattr__(name):\n"
                            "    return name\n"
                        ),
                    },
                )[0].parent
            ]
        )
        assert findings == []

    def test_docs_drift(self, tmp_path):
        doc = tmp_path / "guide.md"
        doc.write_text(
            "Use `repro.units.ms_to_s` for conversion.\n"
            "Avoid `repro.units.vanished_converter` (gone).\n"
            "`repro.units` itself is fine, as is `repro.missing_module.x`.\n",
            encoding="utf-8",
        )
        analyzer = Analyzer(AnalyzerConfig(doc_files=(str(doc),)))
        findings = analyzer.check_paths([SRC_REPRO / "units.py"])
        assert rules_of(findings) == ["RPL009"]
        (finding,) = findings
        assert "vanished_converter" in finding.message
        assert finding.path == doc.as_posix()
        assert finding.line == 2

    def test_doc_cross_links_must_resolve(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        page = docs / "guide.md"
        page.write_text(
            "[fine](other.md) [web](https://example.com/x.md) "
            "[anchor](#section) [mail](mailto:a@b.c)\n"
            "See [the spec](vanished.md#fields) for details.\n",
            encoding="utf-8",
        )
        (docs / "other.md").write_text("present\n", encoding="utf-8")
        analyzer = Analyzer(
            AnalyzerConfig(
                doc_files=(str(page), str(docs / "other.md"))
            )
        )
        findings = analyzer.check_paths([SRC_REPRO / "units.py"])
        assert rules_of(findings) == ["RPL009"]
        (finding,) = findings
        assert "vanished.md" in finding.message
        assert finding.path == page.as_posix()
        assert finding.line == 2

    @staticmethod
    def _wire_tree(tmp_path, pages: Dict[str, str]) -> List[str]:
        write_tree(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/io/__init__.py": "",
                "repro/io/serialization.py": (
                    "FOO_VERSION = 1\n"
                    "BAR_VERSION = 2\n"
                    "NOT_A_WIRE_CONST = 3\n"
                ),
            },
        )
        doc_files = []
        for name, text in pages.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
            doc_files.append(str(path))
        return doc_files

    def test_wire_constant_on_exactly_one_docs_page_is_clean(
        self, tmp_path
    ):
        doc_files = self._wire_tree(
            tmp_path,
            {
                "docs/proto.md": "`FOO_VERSION` pins the foo format.\n",
                "docs/ops.md": "`BAR_VERSION` pins the bar format.\n",
            },
        )
        analyzer = Analyzer(AnalyzerConfig(doc_files=tuple(doc_files)))
        assert analyzer.check_paths([tmp_path / "repro"]) == []

    def test_undocumented_wire_constant_is_flagged(self, tmp_path):
        doc_files = self._wire_tree(
            tmp_path,
            {"docs/proto.md": "`FOO_VERSION` pins the foo format.\n"},
        )
        analyzer = Analyzer(AnalyzerConfig(doc_files=tuple(doc_files)))
        findings = analyzer.check_paths([tmp_path / "repro"])
        assert rules_of(findings) == ["RPL009"]
        (finding,) = findings
        assert "'BAR_VERSION'" in finding.message
        assert "not documented" in finding.message

    def test_doubly_documented_wire_constant_is_flagged(self, tmp_path):
        doc_files = self._wire_tree(
            tmp_path,
            {
                "docs/proto.md": "`FOO_VERSION` and `BAR_VERSION`.\n",
                "docs/ops.md": "BAR_VERSION again, forked.\n",
            },
        )
        analyzer = Analyzer(AnalyzerConfig(doc_files=tuple(doc_files)))
        findings = analyzer.check_paths([tmp_path / "repro"])
        assert rules_of(findings) == ["RPL009"]
        (finding,) = findings
        assert "'BAR_VERSION'" in finding.message
        assert "2 docs pages" in finding.message
        assert "ops.md" in finding.message and "proto.md" in finding.message

    def test_readme_mentions_do_not_count_as_docs_pages(self, tmp_path):
        # Only pages under a docs/ directory are normative homes: a
        # README mention neither satisfies nor forks the requirement.
        doc_files = self._wire_tree(
            tmp_path,
            {
                "README.md": "FOO_VERSION and BAR_VERSION live here.\n",
                "docs/proto.md": "`FOO_VERSION` pins foo.\n",
            },
        )
        analyzer = Analyzer(AnalyzerConfig(doc_files=tuple(doc_files)))
        findings = analyzer.check_paths([tmp_path / "repro"])
        assert [f.message for f in findings if "BAR_VERSION" in f.message]

    def test_wire_constant_check_skips_partial_trees(self, tmp_path):
        # No docs/ pages configured -> quiet; serialization module not
        # analyzed -> quiet.  Partial runs must not demand docs.
        doc_files = self._wire_tree(
            tmp_path, {"README.md": "no docs pages configured\n"}
        )
        analyzer = Analyzer(AnalyzerConfig(doc_files=tuple(doc_files)))
        assert analyzer.check_paths([tmp_path / "repro"]) == []
        docs_only = Analyzer(
            AnalyzerConfig(
                doc_files=(str(tmp_path / "docs" / "none.md"),)
            )
        )
        assert docs_only.check_paths([SRC_REPRO / "units.py"]) == []


# ---------------------------------------------------------------------------
# edge inputs
# ---------------------------------------------------------------------------
class TestEdgeInputs:
    def test_syntax_error_yields_rpl000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        findings = Analyzer().check_paths([path])
        assert rules_of(findings) == ["RPL000"]
        assert "syntax error" in findings[0].message

    def test_empty_file_is_clean(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("", encoding="utf-8")
        assert Analyzer().check_paths([path]) == []

    def test_non_utf8_source_yields_rpl000(self, tmp_path):
        path = tmp_path / "latin.py"
        path.write_bytes(b"# caf\xe9\nX = 1\n")
        findings = Analyzer().check_paths([path])
        assert rules_of(findings) == ["RPL000"]
        assert "not valid UTF-8" in findings[0].message
        findings_via_file = Analyzer().check_file(path)
        assert rules_of(findings_via_file) == ["RPL000"]

    def test_broken_file_does_not_poison_the_project_pass(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/good.py": "def fine():\n    return 1\n",
                "pkg/bad.py": "def broken(:\n",
            },
        )
        findings = Analyzer().check_paths([tmp_path / "pkg"])
        assert rules_of(findings) == ["RPL000"]

    def test_missing_path_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            Analyzer().check_paths(["no/such/tree"])

    def test_exclude_patterns_prune_directory_walks(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/ok.py": "",
                "pkg/vendored/awful.py": "def broken(:\n",
            },
        )
        analyzer = Analyzer(AnalyzerConfig(exclude=("pkg/vendored",)))
        assert analyzer.check_paths([tmp_path / "pkg"]) == []
        assert analyzer.last_stats.files_checked == 2


# ---------------------------------------------------------------------------
# incremental cache
# ---------------------------------------------------------------------------
def _chain_tree(n_modules: int, lines_per_module: int = 30) -> Dict[str, str]:
    """A pkg of n chained modules: mod_i imports mod_{i-1}."""
    files = {"bigpkg/__init__.py": ""}
    for index in range(n_modules):
        body = []
        if index:
            body.append(f"from .mod_{index - 1} import hop_{index - 1}")
            body.append("")
        for line in range(lines_per_module):
            body.append(f"def fn_{line}_{index}(value_s):")
            body.append(f"    return value_s + {line}")
            body.append("")
        body.append(f"def hop_{index}(value_s):")
        if index:
            body.append(f"    return hop_{index - 1}(value_s) + 1")
        else:
            body.append("    return value_s")
        body.append("")
        files[f"bigpkg/mod_{index}.py"] = "\n".join(body)
    return files


class TestIncrementalCache:
    def _cache(self, tmp_path) -> AnalysisCache:
        return AnalysisCache(tmp_path / "cache.json", "test-key")

    def test_warm_run_analyzes_nothing_and_matches_cold(self, tmp_path):
        write_tree(tmp_path, _chain_tree(6))
        target = tmp_path / "bigpkg"
        analyzer = Analyzer()
        cold = analyzer.check_paths([target], cache=self._cache(tmp_path))
        assert analyzer.last_stats.analyzed == 7
        warm = analyzer.check_paths([target], cache=self._cache(tmp_path))
        assert analyzer.last_stats.analyzed == 0
        assert analyzer.last_stats.cached == 7
        assert warm == cold

    def test_leaf_edit_reanalyzes_leaf_plus_dependents_only(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/c.py": "def f_c():\n    return 1\n",
                "pkg/b.py": "from .c import f_c\n\n\ndef f_b():\n    return f_c()\n",
                "pkg/a.py": "from .b import f_b\n\n\ndef f_a():\n    return f_b()\n",
                "pkg/island.py": "def lonely():\n    return 0\n",
            },
        )
        target = tmp_path / "pkg"
        analyzer = Analyzer()
        analyzer.check_paths([target], cache=self._cache(tmp_path))
        # Edit the chain's leaf: c, its importer b, and b's importer a
        # re-analyze; __init__ and the unrelated island stay cached.
        leaf = tmp_path / "pkg" / "c.py"
        leaf.write_text(
            leaf.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        analyzer.check_paths([target], cache=self._cache(tmp_path))
        assert analyzer.last_stats.analyzed == 3
        assert analyzer.last_stats.cached == 2
        # Edit the top of the chain: nothing imports a, so only a runs.
        top = tmp_path / "pkg" / "a.py"
        top.write_text(
            top.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        analyzer.check_paths([target], cache=self._cache(tmp_path))
        assert analyzer.last_stats.analyzed == 1

    def test_unchanged_tree_rerun_is_5x_faster(self, tmp_path):
        write_tree(tmp_path, _chain_tree(40))
        target = tmp_path / "bigpkg"
        analyzer = Analyzer()

        start = time.perf_counter()
        cold = analyzer.check_paths([target], cache=self._cache(tmp_path))
        cold_s = time.perf_counter() - start
        assert analyzer.last_stats.analyzed == 41

        warm_s = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            warm = analyzer.check_paths(
                [target], cache=self._cache(tmp_path)
            )
            warm_s = min(warm_s, time.perf_counter() - start)
        assert analyzer.last_stats.analyzed == 0
        assert warm == cold
        assert cold_s >= 5 * warm_s, (
            f"cold {cold_s:.3f}s vs warm {warm_s:.3f}s — cache speedup "
            f"below the 5x floor"
        )

    def test_cached_findings_survive_round_trip(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(
            "def f(mass_g, power_w):\n    return mass_g + power_w\n",
            encoding="utf-8",
        )
        analyzer = Analyzer()
        cold = analyzer.check_paths([path], cache=self._cache(tmp_path))
        warm = analyzer.check_paths([path], cache=self._cache(tmp_path))
        assert analyzer.last_stats.analyzed == 0
        assert warm == cold
        assert rules_of(warm) == ["RPL001"]

    def test_config_key_mismatch_drops_entries(self, tmp_path):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/m.py": "X = 1\n"})
        target = tmp_path / "pkg"
        analyzer = Analyzer()
        analyzer.check_paths(
            [target], cache=AnalysisCache(tmp_path / "c.json", "key-one")
        )
        analyzer.check_paths(
            [target], cache=AnalysisCache(tmp_path / "c.json", "key-two")
        )
        assert analyzer.last_stats.analyzed == 2

    def test_corrupt_cache_file_starts_cold(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json", encoding="utf-8")
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/m.py": "X = 1\n"})
        analyzer = Analyzer()
        analyzer.check_paths(
            [tmp_path / "pkg"], cache=AnalysisCache(cache_path, "k")
        )
        assert analyzer.last_stats.analyzed == 2
        # and the bad file was replaced by a valid one
        assert json.loads(cache_path.read_text(encoding="utf-8"))

    def test_compute_config_key_tracks_select(self):
        base = compute_config_key(AnalyzerConfig())
        assert base == compute_config_key(AnalyzerConfig())
        assert base != compute_config_key(
            AnalyzerConfig(select=("RPL001",))
        )


# ---------------------------------------------------------------------------
# baseline / ratchet
# ---------------------------------------------------------------------------
def _finding(path: str, rule: str, line: int = 1) -> Finding:
    return Finding(path=path, line=line, col=1, rule=rule, message="msg")


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            _finding(str(tmp_path / "a.py"), "RPL002"),
            _finding(str(tmp_path / "a.py"), "RPL002", line=9),
            _finding(str(tmp_path / "b.py"), "RPL005"),
        ]
        target = tmp_path / "base.json"
        baselinelib.write_baseline(target, findings, tmp_path)
        entries = baselinelib.load_baseline(target)
        assert entries == {"a.py": {"RPL002": 2}, "b.py": {"RPL005": 1}}

    def test_apply_suppresses_known_and_reports_exceeded(self, tmp_path):
        entries = {"a.py": {"RPL002": 1}}
        within = [_finding(str(tmp_path / "a.py"), "RPL002")]
        new, baselined, stale = baselinelib.apply_baseline(
            within, entries, tmp_path
        )
        assert new == [] and len(baselined) == 1 and stale == []
        exceeded = [
            _finding(str(tmp_path / "a.py"), "RPL002", line=1),
            _finding(str(tmp_path / "a.py"), "RPL002", line=2),
        ]
        new, baselined, stale = baselinelib.apply_baseline(
            exceeded, entries, tmp_path
        )
        assert len(new) == 2 and baselined == []

    def test_apply_warns_on_stale_entries(self, tmp_path):
        entries = {"a.py": {"RPL002": 3}, "gone.py": {"RPL001": 1}}
        findings = [_finding(str(tmp_path / "a.py"), "RPL002")]
        new, baselined, stale = baselinelib.apply_baseline(
            findings, entries, tmp_path
        )
        assert new == [] and len(baselined) == 1
        assert len(stale) == 2
        assert any("gone.py" in warning for warning in stale)

    def test_invalid_baseline_is_configuration_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            baselinelib.load_baseline(bad)
        with pytest.raises(ConfigurationError):
            baselinelib.load_baseline(tmp_path / "missing.json")

    def test_committed_baseline_covers_tests_and_benchmarks(self):
        """The CI ratchet contract: no NEW findings beyond the baseline."""
        baseline_path = REPO_ROOT / ".reprolint-baseline.json"
        assert baseline_path.is_file(), "commit .reprolint-baseline.json"
        entries = baselinelib.load_baseline(baseline_path)
        analyzer = Analyzer(
            AnalyzerConfig(exclude=("tests/data/reprolint_fixtures",))
        )
        findings = analyzer.check_paths(
            [SRC_REPRO, REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
        )
        new, _baselined, _stale = baselinelib.apply_baseline(
            findings, entries, REPO_ROOT
        )
        assert new == [], "\n".join(f.format() for f in new)


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------
class TestSarif:
    def test_document_structure(self, tmp_path):
        findings = [_finding(str(tmp_path / "a.py"), "RPL002", line=4)]
        baselined = [_finding(str(tmp_path / "b.py"), "RPL001", line=7)]
        document = sariflib.to_sarif(findings, tmp_path, baselined)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids[0] == "RPL000"
        assert "RPL007" in rule_ids and "RPL009" in rule_ids
        results = run["results"]
        assert len(results) == 2
        by_rule = {r["ruleId"]: r for r in results}
        assert "suppressions" not in by_rule["RPL002"]
        assert by_rule["RPL001"]["suppressions"] == [{"kind": "external"}]
        location = by_rule["RPL002"]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "a.py"
        assert location["region"]["startLine"] == 4

    def test_write_sarif(self, tmp_path):
        out = tmp_path / "report.sarif"
        sariflib.write_sarif(out, [], tmp_path)
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestProjectCli:
    def test_empty_select_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--select", ",", str(FIXTURES / "rpl001_clean.py")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "names no rules" in err
        assert "RPL009" in err  # the known-rules list includes new ids

    def test_stats_flag_reports_cache_usage(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/m.py": "X = 1\n"})
        argv = [
            str(tmp_path / "pkg"),
            "--cache",
            str(tmp_path / "cache.json"),
            "--stats",
        ]
        assert cli.main(argv) == 0
        assert "2 file(s) analyzed, 0 from cache" in capsys.readouterr().err
        assert cli.main(argv) == 0
        assert "0 file(s) analyzed, 2 from cache" in capsys.readouterr().err

    def test_no_cache_forces_cold_runs(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/m.py": "X = 1\n"})
        argv = [str(tmp_path / "pkg"), "--no-cache", "--stats"]
        cli.main(argv)
        cli.main(argv)
        assert "2 file(s) analyzed, 0 from cache" in capsys.readouterr().err

    def test_baseline_workflow_end_to_end(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def f():\n    raise ValueError('nope')\n", encoding="utf-8"
        )
        baseline = tmp_path / "baseline.json"
        argv_common = [str(dirty), "--no-cache"]
        # Without a baseline the finding fails the run.
        assert cli.main(argv_common) == 1
        capsys.readouterr()
        # Accept it, then the same run is clean.
        assert (
            cli.main([*argv_common, "--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        capsys.readouterr()
        assert cli.main([*argv_common, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out
        # A second violation exceeds the accepted count and fails again.
        dirty.write_text(
            "def f():\n    raise ValueError('a')\n"
            "def g():\n    raise ValueError('b')\n",
            encoding="utf-8",
        )
        assert cli.main([*argv_common, "--baseline", str(baseline)]) == 1

    def test_sarif_flag_writes_report(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def f():\n    raise ValueError('nope')\n", encoding="utf-8"
        )
        out = tmp_path / "report.sarif"
        assert (
            cli.main([str(dirty), "--no-cache", "--sarif", str(out)]) == 1
        )
        capsys.readouterr()
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["runs"][0]["results"][0]["ruleId"] == "RPL002"

    def test_json_report_includes_stats_and_baseline(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baselinelib.write_baseline(baseline, [], tmp_path)
        assert (
            cli.main(
                [
                    str(clean),
                    "--no-cache",
                    "--json",
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["stats"]["files_checked"] == 1
        assert report["baseline"]["suppressed"] == 0

    def test_exclude_flag(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/vendored/bad.py": "def broken(:\n",
            },
        )
        argv = [
            str(tmp_path / "pkg"),
            "--no-cache",
            "--exclude",
            "pkg/vendored",
        ]
        assert cli.main(argv) == 0
        capsys.readouterr()
