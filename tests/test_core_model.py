"""Integration tests for the F1Model facade."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError

from repro.core.bounds import BoundKind
from repro.core.knee import LinearIntersectionKnee
from repro.core.model import F1Model
from repro.core.optimality import DesignStatus


@pytest.fixture
def pelican_spa() -> F1Model:
    """Pelican + TX2 running the SPA pipeline (Sec. VI-B numbers)."""
    return F1Model.from_components(
        sensing_range_m=3.0,
        a_max=2.891,
        f_sensor_hz=60.0,
        f_compute_hz=1.1,
    )


class TestF1Model:
    def test_case_b_anchors(self, pelican_spa):
        assert pelican_spa.knee.throughput_hz == pytest.approx(43.0, abs=0.2)
        assert pelican_spa.safe_velocity == pytest.approx(2.30, abs=0.02)
        assert pelican_spa.bound is BoundKind.COMPUTE
        report = pelican_spa.optimality()
        assert report.status is DesignStatus.UNDER_PROVISIONED
        assert report.required_speedup == pytest.approx(39.1, abs=0.2)

    def test_operating_point(self, pelican_spa):
        f, v = pelican_spa.operating_point
        assert f == pytest.approx(1.1)
        assert v == pytest.approx(pelican_spa.velocity_at(1.1))

    def test_with_compute_throughput(self, pelican_spa):
        dronet = pelican_spa.with_compute_throughput(178.0)
        assert dronet.bound is BoundKind.PHYSICS
        assert dronet.compute_overprovision_factor == pytest.approx(
            178.0 / 43.0, rel=0.01
        )
        # original untouched
        assert pelican_spa.pipeline.f_compute_hz == 1.1

    def test_with_sensor_throughput(self, pelican_spa):
        slow_sensor = pelican_spa.with_compute_throughput(178.0)
        slow_sensor = slow_sensor.with_sensor_throughput(10.0)
        assert slow_sensor.bound is BoundKind.SENSOR

    def test_with_acceleration(self, pelican_spa):
        heavier = pelican_spa.with_acceleration(1.0)
        assert heavier.roof_velocity < pelican_spa.roof_velocity
        assert heavier.knee.throughput_hz < pelican_spa.knee.throughput_hz

    def test_throughput_for_roundtrip(self, pelican_spa):
        target = 0.9 * pelican_spa.roof_velocity
        f_needed = pelican_spa.throughput_for(target)
        assert pelican_spa.velocity_at(f_needed) == pytest.approx(target)

    def test_compute_speedup_to_knee_sensor_capped(self):
        # 30 Hz sensor < 43 Hz knee: compute speedup alone cannot help.
        model = F1Model.from_components(3.0, 2.891, 30.0, 1.1)
        assert model.compute_speedup_to_knee == float("inf")

    def test_curve_spans_and_is_monotone(self, pelican_spa):
        curve = pelican_spa.curve(f_min_hz=0.5, f_max_hz=500.0, points=64)
        assert len(curve) == 64
        velocities = list(curve.velocity)
        assert velocities == sorted(velocities)
        assert curve.roof == pelican_spa.roof_velocity

    def test_custom_knee_strategy(self):
        model = F1Model.from_components(
            10.0, 50.0, 60.0, 100.0,
            knee_strategy=LinearIntersectionKnee(),
        )
        assert model.knee.throughput_hz == pytest.approx(10.0**0.5)

    def test_stage_ceilings_for_compute_bound(self, pelican_spa):
        result = pelican_spa.stage_ceilings
        assert [c.stage for c in result] == ["compute"]
        assert result[0].velocity == pytest.approx(2.30, abs=0.02)

    def test_describe_mentions_key_quantities(self, pelican_spa):
        text = pelican_spa.describe()
        assert "knee" in text
        assert "compute" in text
        assert "m/s" in text

    def test_invalid_inputs_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            F1Model.from_components(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            F1Model.from_components(1.0, -1.0, 1.0, 1.0)


class TestSweepUtilities:
    def test_grid_bounds(self):
        from repro.core.sweep import throughput_grid

        grid = throughput_grid(0.1, 1000.0, points=32)
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(1000.0)
        assert len(grid) == 32

    def test_grid_validation(self):
        from repro.core.sweep import throughput_grid

        with pytest.raises(ConfigurationError):
            throughput_grid(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            throughput_grid(1.0, 10.0, points=1)

    def test_clipped_below(self):
        from repro.core.sweep import RooflineCurve

        curve = RooflineCurve.evaluate(10.0, 50.0, points=64)
        clipped = curve.clipped_below(5.0)
        assert max(clipped.velocity) <= 5.0
        assert clipped.roof == curve.roof

    def test_iteration_yields_pairs(self):
        from repro.core.sweep import RooflineCurve

        curve = RooflineCurve.evaluate(10.0, 50.0, points=8)
        pairs = list(curve)
        assert len(pairs) == 8
        assert all(isinstance(f, float) and isinstance(v, float)
                   for f, v in pairs)
