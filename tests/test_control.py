"""Tests for PID, the cascaded flight controller, and offboard."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.control.flight_controller import (
    CascadedFlightController,
    ControllerGains,
)
from repro.control.offboard import OffboardInterface, OffboardMode
from repro.control.pid import PID
from repro.dynamics.body import LongitudinalBody
from repro.dynamics.quadrotor import PlanarQuadrotor, QuadrotorParams


class TestPID:
    def test_proportional_only(self):
        pid = PID(kp=2.0)
        assert pid.step(3.0, dt=0.01) == pytest.approx(6.0)

    def test_output_clamped(self):
        pid = PID(kp=10.0, out_min=-1.0, out_max=1.0)
        assert pid.step(5.0, dt=0.01) == 1.0
        assert pid.step(-5.0, dt=0.01) == -1.0

    def test_integral_accumulates(self):
        pid = PID(kp=0.0, ki=1.0)
        out1 = pid.step(1.0, dt=0.5)
        out2 = pid.step(1.0, dt=0.5)
        assert out2 > out1

    def test_anti_windup_freezes_integral(self):
        pid = PID(kp=0.0, ki=10.0, out_max=1.0, out_min=-1.0)
        for _ in range(100):
            pid.step(10.0, dt=0.1)  # deeply saturated
        # After the error flips, recovery must be immediate-ish, not
        # delayed by a giant wound-up integral.
        out = pid.step(-10.0, dt=0.1)
        assert out < 1.0

    def test_derivative_damps(self):
        pid = PID(kp=0.0, kd=1.0)
        pid.step(0.0, dt=0.1)
        assert pid.step(1.0, dt=0.1) == pytest.approx(10.0)

    def test_reset_clears_state(self):
        pid = PID(kp=1.0, ki=1.0, kd=1.0)
        pid.step(1.0, dt=0.1)
        pid.reset()
        assert pid.step(1.0, dt=0.1) == pytest.approx(1.0 + 0.1)

    def test_invalid_limits(self):
        with pytest.raises(ConfigurationError):
            PID(kp=1.0, out_min=1.0, out_max=-1.0)


class TestCascadedFlightController:
    def test_velocity_tracking(self):
        params = QuadrotorParams(
            total_mass_g=1000.0, arm_length_m=0.2,
            max_thrust_per_pair_g=1200.0,
        )
        quad = PlanarQuadrotor(params)
        controller = CascadedFlightController(quad)
        controller.set_velocity(2.0)
        controller.run(8.0)
        assert quad.state.vx == pytest.approx(2.0, abs=0.3)
        # Altitude held within a modest band while translating.
        assert abs(quad.state.z) < 0.5

    def test_altitude_hold_while_stopping(self):
        params = QuadrotorParams(
            total_mass_g=1000.0, arm_length_m=0.2,
            max_thrust_per_pair_g=1200.0,
        )
        quad = PlanarQuadrotor(params)
        controller = CascadedFlightController(quad)
        controller.set_velocity(1.5)
        controller.run(4.0)
        controller.set_velocity(0.0)
        controller.run(6.0)
        assert abs(quad.state.vx) < 0.2
        assert abs(quad.state.z) < 0.5

    def test_pitch_limit_respected(self):
        gains = ControllerGains(max_pitch_deg=10.0)
        params = QuadrotorParams(
            total_mass_g=1000.0, arm_length_m=0.2,
            max_thrust_per_pair_g=1500.0,
        )
        quad = PlanarQuadrotor(params)
        controller = CascadedFlightController(quad, gains=gains)
        controller.set_velocity(50.0)  # unreachable: pitch saturates
        max_theta = 0.0
        for _ in range(3000):
            controller.update()
            quad.step(0.001)
            max_theta = max(max_theta, abs(quad.state.theta))
        import math

        assert max_theta <= math.radians(10.0) * 1.3  # small overshoot ok


class TestOffboard:
    def test_velocity_mode_tracks(self):
        body = LongitudinalBody(
            total_mass_g=1500.0, a_limit=2.0, pitch_lag_s=0.05
        )
        offboard = OffboardInterface(body)
        offboard.set_velocity(1.5)
        for _ in range(8000):
            offboard.update()
            body.step(0.001)
        assert body.v == pytest.approx(1.5, abs=0.05)
        assert offboard.mode is OffboardMode.VELOCITY

    def test_brake_overrides(self):
        body = LongitudinalBody(
            total_mass_g=1500.0, a_limit=2.0, pitch_lag_s=0.0
        )
        offboard = OffboardInterface(body)
        offboard.set_velocity(2.0)
        for _ in range(5000):
            offboard.update()
            body.step(0.001)
        offboard.brake()
        for _ in range(5000):
            offboard.update()
            body.step(0.001)
        assert body.v == 0.0
        assert offboard.mode is OffboardMode.BRAKE

    def test_idle_commands_zero(self):
        body = LongitudinalBody(total_mass_g=1500.0, a_limit=2.0)
        offboard = OffboardInterface(body)
        offboard.update()
        assert body.commanded_acceleration == 0.0

    def test_negative_setpoint_rejected(self):
        body = LongitudinalBody(total_mass_g=1500.0, a_limit=2.0)
        offboard = OffboardInterface(body)
        with pytest.raises(ConfigurationError):
            offboard.set_velocity(-1.0)
