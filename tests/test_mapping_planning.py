"""Tests for the executable SPA substrate: mapping + planning."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autonomy.mapping import OccupancyGrid, bresenham
from repro.autonomy.planning import (
    PlanningError,
    astar,
    line_of_sight,
    path_length_cells,
    simplify_path,
)
from repro.errors import ConfigurationError


class TestBresenham:
    def test_endpoints_included(self):
        cells = list(bresenham((0, 0), (5, 3)))
        assert cells[0] == (0, 0)
        assert cells[-1] == (5, 3)

    def test_horizontal(self):
        assert list(bresenham((0, 0), (3, 0))) == [
            (0, 0), (1, 0), (2, 0), (3, 0)
        ]

    def test_degenerate_point(self):
        assert list(bresenham((2, 2), (2, 2))) == [(2, 2)]

    @given(
        x0=st.integers(-20, 20), y0=st.integers(-20, 20),
        x1=st.integers(-20, 20), y1=st.integers(-20, 20),
    )
    @settings(max_examples=100)
    def test_connected_and_bounded(self, x0, y0, x1, y1):
        cells = list(bresenham((x0, y0), (x1, y1)))
        assert len(cells) == max(abs(x1 - x0), abs(y1 - y0)) + 1
        for a, b in zip(cells, cells[1:]):
            assert abs(b[0] - a[0]) <= 1 and abs(b[1] - a[1]) <= 1


class TestOccupancyGrid:
    def test_starts_unknown(self):
        grid = OccupancyGrid(5.0, 5.0, resolution_m=0.5)
        assert grid.occupancy_probability((3, 3)) == pytest.approx(0.5)
        assert grid.known_fraction == 0.0
        assert not grid.is_occupied((3, 3))
        assert not grid.is_free((3, 3))

    def test_hit_marks_occupied_miss_marks_free(self):
        grid = OccupancyGrid(10.0, 10.0, resolution_m=0.5)
        origin = (1.0, 5.0)
        # Three identical scans to saturate the evidence.
        for _ in range(3):
            grid.integrate_scan(origin, [0.0], [4.0], max_range_m=8.0)
        hit_cell = grid.world_to_cell((5.0, 5.0))
        free_cell = grid.world_to_cell((3.0, 5.0))
        assert grid.is_occupied(hit_cell)
        assert grid.is_free(free_cell)

    def test_no_return_clears_whole_beam(self):
        grid = OccupancyGrid(10.0, 10.0, resolution_m=0.5)
        for _ in range(3):
            grid.integrate_scan((1.0, 5.0), [0.0], [None], max_range_m=6.0)
        assert grid.is_free(grid.world_to_cell((6.5, 5.0)))

    def test_log_odds_clamped(self):
        grid = OccupancyGrid(4.0, 4.0, resolution_m=0.5)
        for _ in range(100):
            grid.integrate_scan((0.5, 2.0), [0.0], [2.0], max_range_m=3.0)
        cell = grid.world_to_cell((2.5, 2.0))
        probability = grid.occupancy_probability(cell)
        assert probability < 1.0  # saturated, not numerically 1

    def test_world_cell_roundtrip(self):
        grid = OccupancyGrid(8.0, 6.0, resolution_m=0.25)
        cell = grid.world_to_cell((3.3, 4.7))
        x, y = grid.cell_to_world(cell)
        assert abs(x - 3.3) <= grid.resolution_m
        assert abs(y - 4.7) <= grid.resolution_m

    def test_out_of_bounds_rejected(self):
        grid = OccupancyGrid(5.0, 5.0)
        with pytest.raises(ConfigurationError):
            grid.world_to_cell((6.0, 1.0))

    def test_inflation_grows_blocked_region(self):
        grid = OccupancyGrid(10.0, 10.0, resolution_m=0.5)
        for _ in range(3):
            grid.integrate_scan((1.0, 5.0), [0.0], [4.0], max_range_m=8.0)
        tight = grid.blocked_mask(0.0)
        inflated = grid.blocked_mask(1.0)
        assert inflated.sum() > tight.sum()
        # Inflation is a superset.
        assert np.all(inflated[tight])

    def test_mismatched_scan_rejected(self):
        grid = OccupancyGrid(5.0, 5.0)
        with pytest.raises(ConfigurationError):
            grid.integrate_scan((1.0, 1.0), [0.0, 1.0], [2.0], 4.0)


class TestAStar:
    def _empty(self, size: int = 20) -> np.ndarray:
        return np.zeros((size, size), dtype=bool)

    def test_straight_line(self):
        path = astar(self._empty(), (0, 0), (9, 0))
        assert path[0] == (0, 0) and path[-1] == (9, 0)
        assert path_length_cells(path) == pytest.approx(9.0)

    def test_diagonal_uses_sqrt2(self):
        path = astar(self._empty(), (0, 0), (5, 5))
        assert path_length_cells(path) == pytest.approx(5 * math.sqrt(2))

    def test_routes_around_wall(self):
        blocked = self._empty(10)
        blocked[0:9, 5] = True  # wall with a gap at the top
        path = astar(blocked, (0, 0), (9, 0))
        assert all(not blocked[r, c] for c, r in path)
        assert any(r >= 9 for _, r in path)  # went through the gap

    def test_unreachable_raises(self):
        blocked = self._empty(10)
        blocked[:, 5] = True  # solid wall
        with pytest.raises(PlanningError, match="no path"):
            astar(blocked, (0, 0), (9, 0))

    def test_blocked_endpoint_raises(self):
        blocked = self._empty(10)
        blocked[0, 0] = True
        with pytest.raises(PlanningError, match="start"):
            astar(blocked, (0, 0), (5, 5))

    def test_no_diagonal_corner_cutting(self):
        blocked = self._empty(4)
        blocked[0, 1] = True  # (col 1, row 0): one flank of the diagonal
        # (0,0)->(1,1) diagonally would brush the blocked flank; the
        # planner must route around instead.
        path = astar(blocked, (0, 0), (3, 3))
        assert path[1] != (1, 1)
        # Globally: every diagonal step keeps both flanks free.
        for a, b in zip(path, path[1:]):
            if abs(b[0] - a[0]) == 1 and abs(b[1] - a[1]) == 1:
                assert not blocked[a[1], b[0]]
                assert not blocked[b[1], a[0]]

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_path_valid_on_random_maps(self, seed):
        rng = np.random.default_rng(seed)
        blocked = rng.random((15, 15)) < 0.25
        blocked[0, 0] = False
        blocked[14, 14] = False
        try:
            path = astar(blocked, (0, 0), (14, 14))
        except PlanningError:
            return  # genuinely disconnected map: acceptable
        # Valid: starts/ends right, every cell free, 8-connected steps.
        assert path[0] == (0, 0) and path[-1] == (14, 14)
        for col, row in path:
            assert not blocked[row, col]
        for a, b in zip(path, path[1:]):
            assert max(abs(b[0] - a[0]), abs(b[1] - a[1])) == 1


class TestSimplify:
    def test_simplification_shortens_or_equals(self):
        blocked = np.zeros((20, 20), dtype=bool)
        blocked[5:15, 10] = True
        path = astar(blocked, (0, 0), (19, 19))
        short = simplify_path(blocked, path)
        assert len(short) <= len(path)
        assert short[0] == path[0] and short[-1] == path[-1]
        # Consecutive simplified waypoints keep line of sight.
        for a, b in zip(short, short[1:]):
            assert line_of_sight(blocked, a, b)

    def test_two_point_path_untouched(self):
        blocked = np.zeros((5, 5), dtype=bool)
        assert simplify_path(blocked, [(0, 0), (1, 1)]) == [(0, 0), (1, 1)]

    def test_line_of_sight_blocked(self):
        blocked = np.zeros((5, 5), dtype=bool)
        blocked[2, 2] = True
        assert not line_of_sight(blocked, (0, 0), (4, 4))
        assert line_of_sight(blocked, (0, 0), (4, 0))
