"""Tests for the Monte-Carlo mission robustness study."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.missions.mission import Mission, Waypoint
from repro.missions.monte_carlo import (
    MonteCarloConfig,
    mission_success_probability,
)
from repro.redundancy.modular import RedundancyScheme


@pytest.fixture
def short_mission() -> Mission:
    return Mission(
        name="short", waypoints=[Waypoint(0, 0), Waypoint(300, 0)]
    )


class TestMonteCarlo:
    def test_outcome_probabilities_partition(self, spark_ncs, short_mission):
        result = mission_success_probability(
            spark_ncs, short_mission, safe_velocity=10.0,
            config=MonteCarloConfig(samples=200, seed=1),
        )
        total = (
            result.p_complete
            + result.p_energy_shortfall
            + result.p_velocity_infeasible
            + result.p_compute_loss
        )
        assert total == pytest.approx(1.0)
        assert result.samples == 200

    def test_calm_short_mission_nearly_certain(self, spark_ncs, short_mission):
        result = mission_success_probability(
            spark_ncs, short_mission, safe_velocity=10.0,
            config=MonteCarloConfig(
                samples=200, gust_sigma_ms=0.2, seed=2
            ),
        )
        assert result.p_complete > 0.95
        assert result.mean_time_s > 0.0

    def test_gusts_erode_completion(self, spark_ncs, short_mission):
        calm = mission_success_probability(
            spark_ncs, short_mission, safe_velocity=3.0,
            config=MonteCarloConfig(samples=300, gust_sigma_ms=0.2, seed=3),
        )
        gusty = mission_success_probability(
            spark_ncs, short_mission, safe_velocity=3.0,
            config=MonteCarloConfig(samples=300, gust_sigma_ms=1.5, seed=3),
        )
        assert gusty.p_complete < calm.p_complete
        assert gusty.p_velocity_infeasible > calm.p_velocity_infeasible

    def test_long_mission_hits_battery(self, spark_agx):
        marathon = Mission(
            name="marathon",
            waypoints=[Waypoint(0, 0), Waypoint(8000, 0)],
        )
        result = mission_success_probability(
            spark_agx, marathon, safe_velocity=3.0,
            config=MonteCarloConfig(
                samples=100, gust_sigma_ms=0.1, seed=4
            ),
        )
        assert result.p_energy_shortfall > 0.5

    def test_reproducible_given_seed(self, spark_ncs, short_mission):
        config = MonteCarloConfig(samples=100, seed=5)
        a = mission_success_probability(
            spark_ncs, short_mission, 5.0, config
        )
        b = mission_success_probability(
            spark_ncs, short_mission, 5.0, config
        )
        assert a.p_complete == b.p_complete

    def test_redundancy_scheme_accepted(self, spark_ncs, short_mission):
        result = mission_success_probability(
            spark_ncs, short_mission, safe_velocity=10.0,
            config=MonteCarloConfig(samples=50, seed=6),
            scheme=RedundancyScheme.TMR,
        )
        assert 0.0 <= result.p_complete <= 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloConfig(samples=0)
