"""Tests for autonomy algorithm models: networks, E2E, SPA."""

from __future__ import annotations

import pytest

from repro.autonomy.base import Paradigm
from repro.autonomy.e2e import E2EAlgorithm
from repro.autonomy.networks import (
    cad2rl_network,
    dronet_network,
    trailnet_network,
    vgg16_network,
)
from repro.autonomy.nn_estimator import Conv2d, Dense, LayerStack, Pool2d
from repro.autonomy.spa import (
    NAVION_SLAM_LATENCY_S,
    mavbench_package_delivery,
    mavbench_with_navion,
)
from repro.autonomy.workloads import ALGORITHMS, get_algorithm
from repro.compute.platforms import get_platform
from repro.errors import ConfigurationError, UnknownComponentError


class TestLayerStack:
    def test_shape_propagation(self):
        stack = LayerStack(
            "tiny", input_shape=(3, 32, 32),
            layers=[Conv2d(8, kernel=3), Pool2d(2), Dense(10)],
        )
        assert stack.output_shape.channels == 10
        assert stack.layers[0].output_shape.height == 32  # same padding
        assert stack.layers[1].output_shape.height == 16

    def test_conv_flops_formula(self):
        stack = LayerStack(
            "one-conv", input_shape=(1, 8, 8),
            layers=[Conv2d(4, kernel=3, stride=1)],
        )
        # 2 * k^2 * Cin * Cout * Hout * Wout = 2*9*1*4*8*8
        assert stack.total_flops == pytest.approx(2 * 9 * 4 * 64)

    def test_dense_params(self):
        stack = LayerStack(
            "fc", input_shape=(1, 1, 100), layers=[Dense(10)]
        )
        assert stack.total_params == 100 * 10 + 10

    def test_stride_reduction_error(self):
        with pytest.raises(ConfigurationError):
            LayerStack(
                "bad", input_shape=(1, 2, 2),
                layers=[Conv2d(4, kernel=5, stride=5, padding=0)],
            )

    def test_summary_mentions_totals(self):
        text = dronet_network().summary()
        assert "GFLOP" in text
        assert "dronet" in text


class TestNetworks:
    def test_vgg16_flops_anchor(self):
        # VGG16 is ~15.5 GFLOPs (30.9 GFLOP with MAC=2FLOP counting).
        assert vgg16_network().gflops == pytest.approx(30.9, rel=0.05)

    def test_vgg16_params_anchor(self):
        assert vgg16_network().total_params == pytest.approx(138e6, rel=0.03)

    def test_relative_sizes(self):
        # DroNet is tiny; TrailNet mid; VGG16 huge.
        assert dronet_network().gflops < trailnet_network().gflops
        assert trailnet_network().gflops < vgg16_network().gflops
        assert cad2rl_network().gflops < vgg16_network().gflops

    def test_networks_cached(self):
        assert dronet_network() is dronet_network()


class TestE2E:
    def test_measured_throughput_preferred(self):
        algo = E2EAlgorithm("dronet", dronet_network())
        assert algo.throughput_on(get_platform("jetson-tx2")) == 178.0

    def test_estimation_fallback(self):
        algo = E2EAlgorithm("dronet", dronet_network())
        rate = algo.throughput_on(get_platform("cortex-m4"))
        assert 0.0 < rate < 5.0

    def test_paradigm_and_describe(self):
        algo = E2EAlgorithm("dronet", dronet_network())
        assert algo.paradigm is Paradigm.E2E
        assert "E2E" in algo.describe()


class TestSPA:
    def test_total_latency_anchor(self):
        tx2 = get_platform("jetson-tx2")
        spa = mavbench_package_delivery()
        assert spa.latency_on(tx2) == pytest.approx(0.9091, abs=1e-3)
        assert spa.throughput_on(tx2) == pytest.approx(1.1, abs=0.002)

    def test_navion_replacement_anchor(self):
        tx2 = get_platform("jetson-tx2")
        accelerated = mavbench_with_navion()
        assert accelerated.latency_on(tx2) == pytest.approx(0.809, abs=0.002)
        assert accelerated.throughput_on(tx2) == pytest.approx(1.236, abs=0.005)

    def test_navion_stage_is_fixed_function(self):
        accelerated = mavbench_with_navion()
        slam = accelerated.stage("slam")
        assert slam.fixed_function
        assert slam.latency_s == pytest.approx(NAVION_SLAM_LATENCY_S)
        # Fixed-function latency ignores the host platform.
        assert slam.latency_on(get_platform("raspi4")) == pytest.approx(
            NAVION_SLAM_LATENCY_S
        )

    def test_stage_scaling_on_slower_host(self):
        raspi = get_platform("raspi4")
        tx2 = get_platform("jetson-tx2")
        spa = mavbench_package_delivery()
        assert spa.latency_on(raspi) > spa.latency_on(tx2)

    def test_breakdown_sums_to_total(self):
        tx2 = get_platform("jetson-tx2")
        spa = mavbench_package_delivery()
        breakdown = spa.stage_breakdown_on(tx2)
        assert sum(breakdown.values()) == pytest.approx(spa.latency_on(tx2))
        assert list(breakdown) == ["slam", "octomap", "planning", "control"]

    def test_unknown_stage_rejected(self):
        spa = mavbench_package_delivery()
        with pytest.raises(ConfigurationError, match="no SPA stage"):
            spa.stage("teleportation")
        with pytest.raises(ConfigurationError):
            spa.with_accelerated_stage("teleportation", 0.001)

    def test_replacement_preserves_other_stages(self):
        base = mavbench_package_delivery()
        accelerated = mavbench_with_navion()
        for name in ("octomap", "planning", "control"):
            assert accelerated.stage(name).latency_s == (
                base.stage(name).latency_s
            )

    def test_duplicate_stage_names_rejected(self):
        from repro.autonomy.spa import SPAPipeline, SPAStage

        with pytest.raises(ConfigurationError, match="duplicate"):
            SPAPipeline(
                name="bad",
                stages=(
                    SPAStage("a", 0.1),
                    SPAStage("a", 0.2),
                ),
            )


class TestRegistry:
    def test_all_algorithms_instantiate(self):
        tx2 = get_platform("jetson-tx2")
        for name in ALGORITHMS:
            algorithm = get_algorithm(name)
            assert algorithm.throughput_on(tx2) > 0

    def test_unknown_algorithm(self):
        with pytest.raises(UnknownComponentError):
            get_algorithm("skynet")
