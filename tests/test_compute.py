"""Tests for the compute substrate: platforms, characterization,
classic roofline and the latency estimator."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compute.characterization import (
    MEASURED_THROUGHPUT_HZ,
    compute_throughput_hz,
    has_measurement,
    measured_pairs,
)
from repro.compute.latency_estimator import estimate_throughput_hz
from repro.compute.platforms import PLATFORMS, get_platform
from repro.compute.roofline_classic import ClassicRoofline
from repro.errors import ConfigurationError, UnknownComponentError


class TestPlatforms:
    def test_paper_masses(self):
        assert get_platform("intel-ncs").flight_mass_g == 47.0
        agx = get_platform("jetson-agx-30w")
        assert agx.mass_g == 280.0
        assert agx.heatsink_mass_g == pytest.approx(162.0, abs=1.0)

    def test_tx2_flight_mass(self):
        tx2 = get_platform("jetson-tx2")
        # module + carrier + 7.5 W heatsink ~ 190 g (Pelican calibration)
        assert tx2.flight_mass_g == pytest.approx(190.0, abs=1.0)

    def test_pulp_power(self):
        assert get_platform("pulp-gap8").tdp_w == pytest.approx(0.064)

    def test_navion_power(self):
        assert get_platform("navion").tdp_w == pytest.approx(0.002)

    def test_unknown_platform(self):
        with pytest.raises(UnknownComponentError, match="known:"):
            get_platform("tpu-v9")

    def test_registry_consistent(self):
        for name, platform in PLATFORMS.items():
            assert platform.name == name


class TestCharacterization:
    @pytest.mark.parametrize(
        ("algorithm", "platform", "expected"),
        [
            ("dronet", "intel-ncs", 150.0),
            ("dronet", "jetson-agx-30w", 230.0),
            ("dronet", "jetson-tx2", 178.0),
            ("trailnet", "jetson-tx2", 55.0),
            ("dronet", "pulp-gap8", 6.0),
            ("spa-package-delivery", "jetson-tx2", 1.1),
        ],
    )
    def test_paper_numbers(self, algorithm, platform, expected):
        assert compute_throughput_hz(algorithm, platform) == expected

    def test_raspi_numbers_imply_43hz_knee_ratios(self):
        # Sec. VI-D: 3.3x / 110x / 660x below the 43 Hz Pelican knee.
        knee = 43.03
        assert knee / compute_throughput_hz("dronet", "raspi4") == (
            pytest.approx(3.3, abs=0.05)
        )
        assert knee / compute_throughput_hz("trailnet", "raspi4") == (
            pytest.approx(110.0, abs=1.0)
        )
        assert knee / compute_throughput_hz("cad2rl", "raspi4") == (
            pytest.approx(660.0, abs=5.0)
        )

    def test_fallback_requires_workload(self):
        with pytest.raises(ConfigurationError, match="no published measurement"):
            compute_throughput_hz("dronet", "cortex-m4")

    def test_fallback_estimates_with_workload(self):
        rate = compute_throughput_hz(
            "dronet", "cortex-m4",
            workload_gflops=0.08, workload_gbytes=0.004,
        )
        assert 0.0 < rate < 10.0  # an MCU is far below the knee

    def test_unknown_platform_rejected(self):
        with pytest.raises(UnknownComponentError):
            compute_throughput_hz("dronet", "abacus", 1.0, 1.0)

    def test_helpers(self):
        assert has_measurement("dronet", "jetson-tx2")
        assert not has_measurement("dronet", "cortex-m4")
        assert ("dronet", "jetson-tx2") in measured_pairs()
        assert len(measured_pairs()) == len(MEASURED_THROUGHPUT_HZ)


class TestClassicRoofline:
    def test_ridge_point(self):
        roofline = ClassicRoofline(peak_gflops=1000.0, mem_bandwidth_gbs=100.0)
        assert roofline.ridge_point_flops_per_byte == 10.0

    def test_memory_bound_region(self):
        roofline = ClassicRoofline(peak_gflops=1000.0, mem_bandwidth_gbs=100.0)
        assert roofline.attainable_gflops(1.0) == 100.0
        assert not roofline.is_compute_bound(1.0)

    def test_compute_bound_region(self):
        roofline = ClassicRoofline(peak_gflops=1000.0, mem_bandwidth_gbs=100.0)
        assert roofline.attainable_gflops(100.0) == 1000.0
        assert roofline.is_compute_bound(100.0)

    @given(oi=st.floats(min_value=0.01, max_value=1e4))
    def test_attainable_never_exceeds_roofs(self, oi):
        roofline = ClassicRoofline(peak_gflops=1330.0, mem_bandwidth_gbs=59.7)
        perf = roofline.attainable_gflops(oi)
        assert perf <= roofline.peak_gflops + 1e-9
        assert perf <= roofline.mem_bandwidth_gbs * oi + 1e-9

    def test_kernel_time_scales_with_efficiency(self):
        roofline = ClassicRoofline(peak_gflops=1000.0, mem_bandwidth_gbs=100.0)
        fast = roofline.kernel_time_s(10.0, 0.1, efficiency=1.0)
        slow = roofline.kernel_time_s(10.0, 0.1, efficiency=0.5)
        assert slow == pytest.approx(2 * fast)


class TestLatencyEstimator:
    def test_estimates_within_3x_of_measured(self):
        # The estimator should be order-of-magnitude consistent with
        # the paper's published DroNet/TrailNet/VGG16 measurements.
        from repro.autonomy.networks import (
            dronet_network,
            trailnet_network,
            vgg16_network,
        )

        checks = [
            (dronet_network(), "jetson-tx2", 178.0),
            (trailnet_network(), "jetson-tx2", 55.0),
            (vgg16_network(), "jetson-tx2", 10.0),
            (dronet_network(), "intel-ncs", 150.0),
        ]
        for network, platform_name, measured in checks:
            estimate = estimate_throughput_hz(
                network.gflops, network.gbytes, get_platform(platform_name)
            )
            ratio = estimate.throughput_hz / measured
            assert 1 / 3 < ratio < 3.0, (
                f"{network.name} on {platform_name}: estimated "
                f"{estimate.throughput_hz:.1f} Hz vs measured {measured}"
            )

    def test_estimate_reports_intermediates(self):
        estimate = estimate_throughput_hz(
            1.0, 0.05, get_platform("jetson-tx2")
        )
        assert estimate.kernel_time_s > 0
        assert estimate.oi_flops_per_byte == pytest.approx(20.0)
        assert estimate.throughput_hz == pytest.approx(
            1.0 / (estimate.kernel_time_s + estimate.overhead_s)
        )

    def test_efficiency_override(self):
        platform = get_platform("jetson-tx2")
        base = estimate_throughput_hz(1.0, 0.05, platform, efficiency=0.1)
        boosted = estimate_throughput_hz(1.0, 0.05, platform, efficiency=0.2)
        assert boosted.throughput_hz > base.throughput_hz
