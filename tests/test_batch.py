"""Tests for the repro.batch subsystem: matrix, kernels, engine,
result, cache, scenario grids — and scalar/batch equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchCache,
    DesignMatrix,
    evaluate_matrix,
    scenario_grid,
)
from repro.batch.grid import grid_shape
from repro.core.bounds import BoundKind
from repro.core.model import F1Model
from repro.dse.explorer import evaluate as scalar_evaluate
from repro.dse.explorer import explore
from repro.dse.space import DesignSpace
from repro.errors import ConfigurationError

EQ_TOL = 1e-9

positive_param = st.floats(
    min_value=0.05, max_value=1e4, allow_nan=False, allow_infinity=False
)
stage_rate = st.floats(
    min_value=0.1, max_value=2e4, allow_nan=False, allow_infinity=False
)


def assert_row_matches_scalar(result, index: int, model: F1Model) -> None:
    assert result.roof_velocity[index] == pytest.approx(
        model.roof_velocity, abs=EQ_TOL
    )
    assert result.knee_hz[index] == pytest.approx(
        model.knee.throughput_hz, abs=EQ_TOL
    )
    assert result.knee_velocity[index] == pytest.approx(
        model.knee.velocity, abs=EQ_TOL
    )
    assert result.action_throughput_hz[index] == pytest.approx(
        model.action_throughput_hz, abs=EQ_TOL
    )
    assert result.safe_velocity[index] == pytest.approx(
        model.safe_velocity, abs=EQ_TOL
    )
    assert result.bound_at(index) is model.bound
    assert result.status_at(index) is model.optimality().status


class TestScalarBatchEquivalence:
    @given(
        designs=st.lists(
            st.tuples(
                positive_param, positive_param, stage_rate, stage_rate,
                stage_rate,
            ),
            min_size=1,
            max_size=24,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_random_designs_match_scalar_model(self, designs):
        models = [
            F1Model.from_components(d, a, f_s, f_c, f_ctl)
            for d, a, f_s, f_c, f_ctl in designs
        ]
        result = evaluate_matrix(
            DesignMatrix.from_models(models), cache=None
        )
        for index, model in enumerate(models):
            assert_row_matches_scalar(result, index, model)

    @pytest.mark.parametrize(
        "f_sensor, f_compute, f_control",
        [
            (60.0, 60.0, 1000.0),   # sensor/compute tie -> sensor
            (60.0, 60.0, 60.0),     # three-way tie -> sensor
            (90.0, 60.0, 60.0),     # compute/control tie -> compute
            (60.0, 90.0, 60.0),     # sensor/control tie -> sensor
        ],
    )
    def test_bound_classification_at_stage_rate_ties(
        self, f_sensor, f_compute, f_control
    ):
        model = F1Model.from_components(
            10.0, 50.0, f_sensor, f_compute, f_control
        )
        result = evaluate_matrix(
            DesignMatrix.from_models([model]), cache=None
        )
        assert result.bound_at(0) is model.bound
        assert result.bound_at(0) is not BoundKind.PHYSICS

    def test_knee_fraction_and_tolerance_forwarded(self):
        from repro.core.knee import FractionOfRoofKnee

        model = F1Model.from_components(
            10.0, 50.0, 60.0, 95.0, knee_strategy=FractionOfRoofKnee(0.9)
        )
        result = evaluate_matrix(
            DesignMatrix.from_models([model]),
            knee_fraction=0.9,
            tolerance=0.3,
            cache=None,
        )
        assert_row_matches_scalar(result, 0, model)
        assert result.status_at(0) is model.optimality(tolerance=0.3).status

    def test_model_knee_fraction_carried_by_matrix(self):
        from repro.core.knee import FractionOfRoofKnee

        model = F1Model.from_components(
            10.0, 50.0, 60.0, 30.0, knee_strategy=FractionOfRoofKnee(0.5)
        )
        matrix = DesignMatrix.from_models([model])
        assert matrix.knee_fraction == 0.5
        result = evaluate_matrix(matrix, cache=None)  # fraction not re-passed
        assert_row_matches_scalar(result, 0, model)
        # An explicit argument still wins over the recorded fraction.
        overridden = evaluate_matrix(matrix, knee_fraction=0.9, cache=None)
        assert overridden.knee_fraction == 0.9

    def test_mixed_knee_fractions_rejected(self):
        from repro.core.knee import FractionOfRoofKnee

        models = [
            F1Model.from_components(
                10.0, 50.0, 60.0, 90.0,
                knee_strategy=FractionOfRoofKnee(fraction),
            )
            for fraction in (0.5, 0.9)
        ]
        with pytest.raises(ConfigurationError, match="mix knee fractions"):
            DesignMatrix.from_models(models)

    def test_100k_grid_under_one_second_and_matches_scalar_sample(self):
        import time

        grid = scenario_grid(
            sensing_range_m=np.linspace(2.0, 20.0, 50),
            a_max=np.linspace(5.0, 50.0, 40),
            f_sensor_hz=(30.0, 60.0),
            f_compute_hz=np.geomspace(1.0, 1000.0, 25),
        )
        assert len(grid) == 100_000
        start = time.perf_counter()
        result = evaluate_matrix(grid, cache=None)
        assert time.perf_counter() - start < 1.0
        rng = np.random.default_rng(7)
        for index in rng.choice(len(grid), size=1000, replace=False):
            assert_row_matches_scalar(
                result, int(index), grid.model_at(int(index))
            )


class TestDesignMatrix:
    def test_scalars_broadcast_against_columns(self):
        matrix = DesignMatrix.from_arrays(
            sensing_range_m=10.0,
            a_max=(10.0, 20.0, 30.0),
            f_sensor_hz=60.0,
            f_compute_hz=(10.0, 100.0, 1000.0),
        )
        assert len(matrix) == 3
        assert matrix.sensing_range_m.tolist() == [10.0, 10.0, 10.0]
        assert matrix.f_control_hz.tolist() == [1000.0] * 3

    def test_incompatible_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignMatrix.from_arrays(10.0, (1.0, 2.0), 60.0, (1.0, 2.0, 3.0))

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_nonpositive_and_nonfinite_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            DesignMatrix.from_arrays(10.0, (50.0, bad), 60.0, 100.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignMatrix.from_models([])

    def test_unsupported_knee_strategy_rejected(self):
        from repro.core.knee import MaxCurvatureKnee

        model = F1Model.from_components(
            10.0, 50.0, 60.0, 90.0, knee_strategy=MaxCurvatureKnee()
        )
        with pytest.raises(ConfigurationError, match="FractionOfRoofKnee"):
            DesignMatrix.from_models([model])

    def test_label_count_must_match(self):
        with pytest.raises(ConfigurationError):
            DesignMatrix.from_arrays(
                10.0, (1.0, 2.0), 60.0, 100.0, labels=("only-one",)
            )

    def test_columns_are_frozen(self):
        matrix = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 100.0)
        with pytest.raises(ValueError):
            matrix.a_max[0] = 1.0

    def test_caller_array_not_frozen(self):
        mine = np.array([10.0, 20.0])
        DesignMatrix.from_arrays(mine, 50.0, 60.0, 100.0)
        mine[0] = 11.0  # still writable

    def test_content_hash_tracks_content(self):
        a = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 100.0)
        b = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 100.0)
        c = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 101.0)
        d = DesignMatrix.from_arrays(
            10.0, 50.0, 60.0, 100.0, labels=("x",)
        )
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()
        assert a.content_hash() != d.content_hash()

    def test_model_at_round_trips(self):
        matrix = DesignMatrix.from_arrays(3.0, 9.81, 60.0, 1.1)
        model = matrix.model_at(0)
        assert model.sensing_range_m == 3.0
        assert model.pipeline.f_compute_hz == 1.1

    def test_take_preserves_labels_and_order(self):
        matrix = DesignMatrix.from_arrays(
            10.0, (1.0, 2.0, 3.0), 60.0, 100.0, labels=("a", "b", "c")
        )
        subset = matrix.take([2, 0])
        assert subset.labels == ("c", "a")
        assert subset.a_max.tolist() == [3.0, 1.0]


class TestScenarioGrid:
    def test_shape_is_cartesian_product(self):
        shape = grid_shape((5.0, 10.0), (10.0, 20.0, 30.0), 60.0, (1.0, 2.0))
        assert shape == (2, 3, 1, 2, 1)
        grid = scenario_grid(
            (5.0, 10.0), (10.0, 20.0, 30.0), 60.0, (1.0, 2.0)
        )
        assert len(grid) == 12

    def test_last_axis_varies_fastest(self):
        grid = scenario_grid(
            (5.0, 10.0), 20.0, 60.0, (1.0, 2.0)
        )
        assert grid.f_compute_hz.tolist() == [1.0, 2.0, 1.0, 2.0]
        assert grid.sensing_range_m.tolist() == [5.0, 5.0, 10.0, 10.0]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_grid((), 20.0, 60.0, 100.0)


class TestBatchResult:
    @pytest.fixture()
    def result(self):
        matrix = DesignMatrix.from_arrays(
            sensing_range_m=(10.0, 10.0, 3.0, 5.0),
            a_max=(50.0, 50.0, 9.0, 20.0),
            f_sensor_hz=(120.0, 60.0, 60.0, 30.0),
            f_compute_hz=(178.0, 1.1, 90.0, 240.0),
            labels=("fast", "slow", "mid", "sensor-capped"),
        )
        return evaluate_matrix(matrix, cache=None)

    def test_top_k_matches_full_sort(self, result):
        top = result.top_k(2)
        full = result.sort_by("safe_velocity")
        assert top.matrix.labels == full.matrix.labels[:2]
        assert np.all(np.diff(full.safe_velocity) <= 0)

    def test_top_k_boundary_ties_resolve_in_original_order(self):
        # 40 identical copies of each parameter set: ties straddle any k.
        f_compute = np.tile((5.0, 50.0, 500.0), 40)
        matrix = DesignMatrix.from_arrays(
            10.0, 50.0, 60.0, f_compute,
            labels=[f"row{i}" for i in range(f_compute.size)],
        )
        result = evaluate_matrix(matrix, cache=None)
        for k in (1, 5, 41, 100):
            top = result.top_k(k)
            full = result.sort_by()
            assert top.matrix.labels == full.matrix.labels[:k]

    def test_top_k_clamps_and_validates(self, result):
        assert len(result.top_k(100)) == len(result)
        with pytest.raises(ConfigurationError):
            result.top_k(0)

    def test_where_filters_rows(self, result):
        physics = result.where(result.bound_codes == 0)
        assert len(physics) == 1
        assert all(b is BoundKind.PHYSICS for b in physics.bounds())
        empty = result.where(np.zeros(len(result), dtype=bool))
        assert len(empty) == 0
        assert empty.describe() == "0 designs"
        with pytest.raises(ConfigurationError):
            result.where(np.ones(len(result)))  # not boolean

    def test_unknown_sort_column_rejected(self, result):
        with pytest.raises(ConfigurationError):
            result.sort_by("mass")

    def test_bound_counts_partition(self, result):
        counts = result.bound_counts()
        assert sum(counts.values()) == len(result)

    def test_row_and_rows_materialize(self, result):
        row = result.row(1)
        assert row.label == "slow"
        assert row.bound is BoundKind.COMPUTE
        assert row.provisioning_factor < 1.0
        assert len(result.rows()) == len(result)

    def test_table_renders_and_truncates(self, result):
        text = result.table(limit=2)
        assert "fast" in text
        assert "... 2 more rows" in text
        assert len(result.table().splitlines()) == len(result) + 2

    def test_describe_summarizes(self, result):
        text = result.describe()
        assert f"{len(result)} designs" in text


class TestBatchCache:
    def test_repeated_evaluation_hits_cache(self):
        cache = BatchCache(maxsize=4)
        matrix = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 100.0)
        first = evaluate_matrix(matrix, cache=cache)
        again = evaluate_matrix(matrix, cache=cache)
        assert again is first
        rebuilt = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 100.0)
        assert evaluate_matrix(rebuilt, cache=cache) is first
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_kernel_parameters_key_the_cache(self):
        cache = BatchCache(maxsize=4)
        matrix = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 100.0)
        base = evaluate_matrix(matrix, cache=cache)
        other = evaluate_matrix(matrix, knee_fraction=0.9, cache=cache)
        assert other is not base
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = BatchCache(maxsize=2)
        matrices = [
            DesignMatrix.from_arrays(10.0, 50.0, 60.0, rate)
            for rate in (1.0, 2.0, 3.0)
        ]
        results = [evaluate_matrix(m, cache=cache) for m in matrices]
        assert len(cache) == 2
        assert evaluate_matrix(matrices[0], cache=cache) is not results[0]

    def test_stats_and_clear(self):
        cache = BatchCache(maxsize=2)
        assert cache.stats.hit_rate == 0.0
        matrix = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 100.0)
        evaluate_matrix(matrix, cache=cache)
        evaluate_matrix(matrix, cache=cache)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ConfigurationError):
            BatchCache(maxsize=0)
        with pytest.raises(ConfigurationError):
            BatchCache(max_bytes=0)

    def test_concurrent_put_keeps_byte_bound_and_book_keeping(self):
        import threading

        # Pre-build equally sized distinct results, then hammer put()
        # from several threads under a budget that forces constant
        # eviction.  After the dust settles every invariant must hold:
        # both bounds respected and total_bytes equal to the bytes of
        # the entries actually retained.
        results = [
            evaluate_matrix(
                DesignMatrix.from_arrays(
                    10.0, 50.0, 60.0, np.linspace(1.0, 100.0, 64) + shift
                ),
                cache=None,
            )
            for shift in range(24)
        ]
        one = results[0].nbytes
        assert all(r.nbytes == one for r in results)
        cache = BatchCache(maxsize=16, max_bytes=4 * one)
        barrier = threading.Barrier(6)

        def hammer(thread_id: int) -> None:
            barrier.wait()
            for round_number in range(50):
                for i, result in enumerate(results):
                    cache.put((thread_id, i), result)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = cache.stats
        assert 1 <= stats.entries <= 4
        assert stats.total_bytes <= stats.max_bytes
        retained = sum(r.nbytes for r in cache._entries.values())
        assert stats.total_bytes == retained

    def test_byte_budget_evicts_and_skips_oversized(self):
        matrix = DesignMatrix.from_arrays(
            10.0, 50.0, 60.0, np.linspace(1.0, 100.0, 100)
        )
        result = evaluate_matrix(matrix, cache=None)
        # Budget fits exactly one result: a second entry evicts the first.
        cache = BatchCache(maxsize=8, max_bytes=result.nbytes)
        evaluate_matrix(matrix, cache=cache)
        other = DesignMatrix.from_arrays(
            10.0, 50.0, 60.0, np.linspace(1.0, 100.0, 100) + 1.0
        )
        evaluate_matrix(other, cache=cache)
        assert len(cache) == 1
        assert cache.stats.total_bytes <= cache.stats.max_bytes
        # A result bigger than the whole budget is never stored.
        tiny = BatchCache(maxsize=8, max_bytes=1)
        evaluate_matrix(matrix, cache=tiny)
        assert len(tiny) == 0


class TestBatchResultOwnership:
    def test_caller_arrays_not_frozen_by_result(self):
        from repro.batch.result import BatchResult

        matrix = DesignMatrix.from_arrays(10.0, 50.0, 60.0, 100.0)
        template = evaluate_matrix(matrix, cache=None)
        mine = np.array([1.0])
        BatchResult(
            matrix=matrix,
            roof_velocity=mine,
            knee_hz=template.knee_hz,
            knee_velocity=template.knee_velocity,
            action_throughput_hz=template.action_throughput_hz,
            safe_velocity=template.safe_velocity,
            bound_codes=template.bound_codes,
            status_codes=template.status_codes,
            knee_fraction=template.knee_fraction,
            tolerance=template.tolerance,
        )
        mine[0] = 2.0  # still writable


class TestConsumerEquivalence:
    def test_explore_matches_scalar_evaluate(self):
        space = DesignSpace(
            uav_names=("dji-spark", "asctec-pelican"),
            compute_names=("intel-ncs", "jetson-tx2"),
            algorithm_names=("dronet", "trailnet"),
        )
        batch_results = {r.label: r for r in explore(space)}
        for candidate in space.candidates():
            scalar = scalar_evaluate(candidate)
            batched = batch_results[scalar.label]
            assert batched.safe_velocity == pytest.approx(
                scalar.safe_velocity, abs=EQ_TOL
            )
            assert batched.knee_hz == pytest.approx(
                scalar.knee_hz, abs=EQ_TOL
            )
            assert batched.bound is scalar.bound

    def test_from_candidates_labels_match_explorer(self):
        space = DesignSpace(("dji-spark",), ("intel-ncs",), ("dronet",))
        matrix = DesignMatrix.from_candidates(space.candidates())
        assert matrix.labels == ("dji-spark+intel-ncs+dronet",)

    def test_sweep_accepts_numpy_values(self):
        from repro.skyline.knobs import Knobs
        from repro.skyline.sweep import sweep_knob

        result = sweep_knob(
            Knobs(), "sensor_range_m", np.linspace(5.0, 20.0, 4)
        )
        assert len(result.points) == 4
        velocities = [p.safe_velocity for p in result.points]
        assert velocities == sorted(velocities)  # range helps v_safe
        with pytest.raises(ConfigurationError):
            sweep_knob(Knobs(), "sensor_range_m", np.array([]))


class TestCacheStatsAttribution:
    def _result(self, rate: float = 100.0):
        return evaluate_matrix(
            DesignMatrix.from_arrays(10.0, 50.0, 60.0, rate), cache=None
        )

    def test_hit_rate_zero_traffic_is_zero_not_nan(self):
        from repro.batch import CacheStats

        stats = BatchCache().stats
        assert stats.hits == stats.misses == 0
        assert stats.hit_rate == 0.0
        # Same for a zero-traffic delta window.
        window = stats.delta(stats)
        assert isinstance(window, CacheStats)
        assert window.hit_rate == 0.0

    def test_snapshot_delta_isolates_a_window(self):
        cache = BatchCache()
        cache.put("a", self._result())
        cache.get("a")
        cache.get("missing")
        before = cache.stats_snapshot()
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        window = cache.stats_snapshot().delta(before)
        assert window.hits == 2
        assert window.misses == 1
        assert window.hit_rate == pytest.approx(2 / 3)
        # State fields keep the *latest* snapshot's values.
        assert window.entries == 1
        assert window.total_bytes == cache.stats.total_bytes

    def test_reset_stats_keeps_entries(self):
        cache = BatchCache()
        cache.put("a", self._result())
        cache.get("a")
        cache.get("missing")
        cache.reset_stats()
        stats = cache.stats
        assert stats.hits == 0 and stats.misses == 0
        assert len(cache) == 1
        assert cache.get("a") is not None  # entry survived the reset

    def test_concurrent_get_put_counters_consistent(self):
        import threading

        cache = BatchCache(maxsize=64)
        result = self._result()
        n_threads, rounds = 6, 200
        barrier = threading.Barrier(n_threads)

        def traffic(thread_id: int) -> None:
            barrier.wait()
            key = ("k", thread_id)
            for _ in range(rounds):
                cache.get(key)    # miss first time, hits after the put
                cache.put(key, result)
                cache.get(key)

        threads = [
            threading.Thread(target=traffic, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats_snapshot()
        # Every get() incremented exactly one counter: no tears, no
        # double counts, under the instance lock.
        assert stats.hits + stats.misses == n_threads * rounds * 2
        assert stats.misses == n_threads  # only each key's first get
