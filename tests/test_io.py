"""Tests for table rendering and configuration serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.io.serialization import (
    configuration_from_dict,
    configuration_to_dict,
)
from repro.io.tables import format_table
from repro.uav.presets import custom_s500, dji_spark


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ("name", "value"),
            (("alpha", 1.5), ("beta", 20.25)),
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "alpha" in text
        assert "1.500" in text
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly aligned

    def test_bool_rendering(self):
        text = format_table(("flag",), ((True,), (False,)))
        assert "yes" in text and "no" in text

    def test_custom_float_format(self):
        text = format_table(
            ("v",), ((1.23456,),), float_format="{:.1f}"
        )
        assert "1.2" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(("a", "b"), ((1,),))

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table((), ())

    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("Ll", "Nd")
                    ),
                    max_size=12,
                ),
                st.floats(min_value=-1e6, max_value=1e6),
            ),
            max_size=8,
        )
    )
    def test_always_aligned(self, rows):
        text = format_table(("k", "v"), rows)
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1


class TestSerialization:
    def test_roundtrip_preserves_model(self):
        original = custom_s500("C")
        data = configuration_to_dict(original)
        rebuilt = configuration_from_dict(data)
        assert rebuilt == original
        assert rebuilt.max_acceleration == original.max_acceleration
        assert rebuilt.total_mass_g == original.total_mass_g

    def test_json_compatible(self):
        data = configuration_to_dict(dji_spark())
        rebuilt = configuration_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.name == dji_spark().name
        assert rebuilt.total_mass_g == pytest.approx(
            dji_spark().total_mass_g
        )

    def test_scalar_fields_roundtrip(self):
        uav = custom_s500("A").with_redundancy(2).with_extra_payload(25.0)
        rebuilt = configuration_from_dict(configuration_to_dict(uav))
        assert rebuilt.compute_redundancy == 2
        assert rebuilt.extra_payload_g == 25.0
        assert rebuilt.payload_override_g == 590.0

    def test_missing_section_rejected(self):
        data = configuration_to_dict(dji_spark())
        del data["frame"]
        with pytest.raises(ConfigurationError, match="frame"):
            configuration_from_dict(data)

    # Regression: malformed component sections used to leak the raw
    # ``TypeError`` from the dataclass constructor instead of a
    # ConfigurationError naming the section and field.
    def test_unknown_component_field_named(self):
        data = configuration_to_dict(dji_spark())
        data["motor"]["warp_factor"] = 9.0
        with pytest.raises(
            ConfigurationError, match=r"'motor'.*'warp_factor'"
        ):
            configuration_from_dict(data)

    def test_missing_component_field_named(self):
        data = configuration_to_dict(dji_spark())
        del data["sensor"]["framerate_hz"]
        with pytest.raises(
            ConfigurationError, match=r"'sensor'.*'framerate_hz'"
        ):
            configuration_from_dict(data)

    def test_non_mapping_section_rejected(self):
        data = configuration_to_dict(dji_spark())
        data["frame"] = ["not", "a", "mapping"]
        with pytest.raises(ConfigurationError, match="'frame'.*mapping"):
            configuration_from_dict(data)
