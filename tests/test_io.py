"""Tests for table rendering and configuration serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.io.serialization import (
    configuration_from_dict,
    configuration_to_dict,
)
from repro.io.tables import format_table
from repro.uav.presets import custom_s500, dji_spark


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ("name", "value"),
            (("alpha", 1.5), ("beta", 20.25)),
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "alpha" in text
        assert "1.500" in text
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # perfectly aligned

    def test_bool_rendering(self):
        text = format_table(("flag",), ((True,), (False,)))
        assert "yes" in text and "no" in text

    def test_custom_float_format(self):
        text = format_table(
            ("v",), ((1.23456,),), float_format="{:.1f}"
        )
        assert "1.2" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(("a", "b"), ((1,),))

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table((), ())

    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=("Ll", "Nd")
                    ),
                    max_size=12,
                ),
                st.floats(min_value=-1e6, max_value=1e6),
            ),
            max_size=8,
        )
    )
    def test_always_aligned(self, rows):
        text = format_table(("k", "v"), rows)
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1


class TestSerialization:
    def test_roundtrip_preserves_model(self):
        original = custom_s500("C")
        data = configuration_to_dict(original)
        rebuilt = configuration_from_dict(data)
        assert rebuilt == original
        assert rebuilt.max_acceleration == original.max_acceleration
        assert rebuilt.total_mass_g == original.total_mass_g

    def test_json_compatible(self):
        data = configuration_to_dict(dji_spark())
        rebuilt = configuration_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.name == dji_spark().name
        assert rebuilt.total_mass_g == pytest.approx(
            dji_spark().total_mass_g
        )

    def test_scalar_fields_roundtrip(self):
        uav = custom_s500("A").with_redundancy(2).with_extra_payload(25.0)
        rebuilt = configuration_from_dict(configuration_to_dict(uav))
        assert rebuilt.compute_redundancy == 2
        assert rebuilt.extra_payload_g == 25.0
        assert rebuilt.payload_override_g == 590.0

    def test_missing_section_rejected(self):
        data = configuration_to_dict(dji_spark())
        del data["frame"]
        with pytest.raises(ConfigurationError, match="frame"):
            configuration_from_dict(data)

    # Regression: malformed component sections used to leak the raw
    # ``TypeError`` from the dataclass constructor instead of a
    # ConfigurationError naming the section and field.
    def test_unknown_component_field_named(self):
        data = configuration_to_dict(dji_spark())
        data["motor"]["warp_factor"] = 9.0
        with pytest.raises(
            ConfigurationError, match=r"'motor'.*'warp_factor'"
        ):
            configuration_from_dict(data)

    def test_missing_component_field_named(self):
        data = configuration_to_dict(dji_spark())
        del data["sensor"]["framerate_hz"]
        with pytest.raises(
            ConfigurationError, match=r"'sensor'.*'framerate_hz'"
        ):
            configuration_from_dict(data)

    def test_non_mapping_section_rejected(self):
        data = configuration_to_dict(dji_spark())
        data["frame"] = ["not", "a", "mapping"]
        with pytest.raises(ConfigurationError, match="'frame'.*mapping"):
            configuration_from_dict(data)


class TestResultSerialization:
    """Round-trip coverage for the result side: DesignMatrix and
    BatchResult -> dict -> equality, with version-stable code names."""

    @pytest.fixture()
    def batch(self):
        import numpy as np

        from repro.batch import DesignMatrix, evaluate_matrix

        matrix = DesignMatrix.from_arrays(
            sensing_range_m=np.linspace(2.0, 20.0, 6),
            a_max=np.linspace(5.0, 50.0, 6),
            f_sensor_hz=60.0,
            f_compute_hz=np.geomspace(1.0, 1000.0, 6),
            labels=[f"p{i}" for i in range(6)],
        )
        return evaluate_matrix(matrix, cache=None)

    def test_design_matrix_roundtrip(self, batch):
        from repro.io.serialization import (
            design_matrices_equal,
            design_matrix_from_dict,
            design_matrix_to_dict,
        )

        data = json.loads(json.dumps(design_matrix_to_dict(batch.matrix)))
        rebuilt = design_matrix_from_dict(data)
        assert design_matrices_equal(rebuilt, batch.matrix)
        assert rebuilt.content_hash() == batch.matrix.content_hash()

    def test_batch_result_roundtrip(self, batch):
        from repro.io.serialization import (
            batch_result_from_dict,
            batch_result_to_dict,
            batch_results_equal,
        )

        data = json.loads(json.dumps(batch_result_to_dict(batch)))
        rebuilt = batch_result_from_dict(data)
        assert batch_results_equal(rebuilt, batch)
        assert rebuilt.bounds() == batch.bounds()
        assert rebuilt.statuses() == batch.statuses()

    def test_bounds_serialize_as_names_not_ints(self, batch):
        from repro.io.serialization import batch_result_to_dict

        data = batch_result_to_dict(batch)
        assert all(isinstance(name, str) for name in data["bounds"])
        assert all(isinstance(name, str) for name in data["statuses"])

    def test_code_maps_pin_the_kernel_tables(self):
        """The wire mapping stays consistent with the live kernels: if
        the in-process integer encoding ever changes, this fails and
        the wire maps must grow a translation, not silently drift."""
        from repro.batch.kernels import BOUND_KINDS, DESIGN_STATUSES
        from repro.io.serialization import (
            BOUND_CODE_TO_NAME,
            BOUND_NAME_TO_CODE,
            STATUS_CODE_TO_NAME,
            STATUS_NAME_TO_CODE,
        )

        assert BOUND_CODE_TO_NAME == {
            code: kind.value for code, kind in enumerate(BOUND_KINDS)
        }
        assert STATUS_CODE_TO_NAME == {
            code: status.value
            for code, status in enumerate(DESIGN_STATUSES)
        }
        # Bijections both ways.
        assert len(BOUND_NAME_TO_CODE) == len(BOUND_CODE_TO_NAME)
        assert len(STATUS_NAME_TO_CODE) == len(STATUS_CODE_TO_NAME)

    def test_unknown_bound_name_rejected(self, batch):
        from repro.io.serialization import (
            batch_result_from_dict,
            batch_result_to_dict,
        )

        data = batch_result_to_dict(batch)
        data["bounds"][0] = "banana"
        with pytest.raises(ConfigurationError, match="banana"):
            batch_result_from_dict(data)

    def test_missing_result_field_named(self, batch):
        from repro.io.serialization import (
            batch_result_from_dict,
            batch_result_to_dict,
        )

        data = batch_result_to_dict(batch)
        del data["safe_velocity"]
        with pytest.raises(
            ConfigurationError, match="safe_velocity"
        ):
            batch_result_from_dict(data)
        data = batch_result_to_dict(batch)
        del data["matrix"]["a_max"]
        with pytest.raises(ConfigurationError, match="a_max"):
            batch_result_from_dict(data)


class TestTraceEventWireFormat:
    def _span(self, **overrides):
        from repro.obs import SpanRecord

        fields = dict(
            name="shard.evaluate",
            start_s=0.018234,
            duration_s=0.000912,
            tid=4,
            attributes={"rows": 4096},
        )
        fields.update(overrides)
        return SpanRecord(**fields)

    def test_roundtrip_preserves_span(self):
        from repro.io.serialization import (
            trace_event_from_dict,
            trace_event_to_dict,
        )

        span = self._span()
        clone = trace_event_from_dict(trace_event_to_dict(span))
        assert clone.name == span.name
        assert clone.tid == span.tid
        assert dict(clone.attributes) == dict(span.attributes)
        # Times quantize to whole microseconds on the wire.
        assert clone.start_s == pytest.approx(span.start_s, abs=1e-6)
        assert clone.duration_s == pytest.approx(
            span.duration_s, abs=1e-6
        )

    def test_wire_times_are_integer_microseconds(self):
        from repro.io.serialization import trace_event_to_dict

        data = trace_event_to_dict(self._span())
        assert data["start_us"] == 18234
        assert data["dur_us"] == 912
        assert isinstance(data["start_us"], int)
        json.dumps(data)

    def test_missing_field_named(self):
        from repro.io.serialization import (
            trace_event_from_dict,
            trace_event_to_dict,
        )

        for key in ("name", "start_us", "dur_us", "tid", "args"):
            data = trace_event_to_dict(self._span())
            del data[key]
            with pytest.raises(ConfigurationError, match=key):
                trace_event_from_dict(data)

    def test_bad_values_rejected(self):
        from repro.io.serialization import (
            trace_event_from_dict,
            trace_event_to_dict,
        )

        good = trace_event_to_dict(self._span())
        for key, bad in (
            ("name", ""),
            ("start_us", -1),
            ("dur_us", 1.5),
            ("tid", -2),
            ("args", [1, 2]),
        ):
            data = dict(good, **{key: bad})
            with pytest.raises(ConfigurationError, match=key):
                trace_event_from_dict(data)
        with pytest.raises(ConfigurationError, match="mapping"):
            trace_event_from_dict("not a dict")

    def test_telemetry_document_validation(self):
        from repro.io.serialization import (
            TELEMETRY_VERSION,
            telemetry_from_dict,
            trace_event_to_dict,
        )

        doc = {
            "version": TELEMETRY_VERSION,
            "events": [trace_event_to_dict(self._span())],
            "counters": {"rows.evaluated": 4096},
            "gauges": {"rows_per_s": 1e6},
        }
        assert telemetry_from_dict(doc) is doc  # validated, unchanged
        assert telemetry_from_dict(None) is None
        with pytest.raises(ConfigurationError, match="version"):
            telemetry_from_dict({"version": 99})
        with pytest.raises(ConfigurationError, match="counters"):
            telemetry_from_dict(
                {"version": TELEMETRY_VERSION, "counters": [1]}
            )
        bad_event = dict(trace_event_to_dict(self._span()), name="")
        with pytest.raises(ConfigurationError, match="name"):
            telemetry_from_dict(
                {"version": TELEMETRY_VERSION, "events": [bad_event]}
            )

    def test_study_result_telemetry_roundtrip(self):
        from repro.obs import Tracer
        from repro.study import DesignSpec, StudySpec, run_study
        from repro.study.result import StudyResult

        spec = StudySpec(
            design=DesignSpec.knob_axes(
                axes={"compute_tdp_w": (1.0, 10.0)}
            )
        )
        traced = run_study(spec, tracer=Tracer())
        assert traced.telemetry is not None
        clone = StudyResult.from_dict(traced.to_dict())
        assert clone.telemetry == traced.telemetry
        assert clone.equals(traced)
        # An untraced run's dict carries no telemetry key at all.
        plain = run_study(spec)
        assert plain.telemetry is None
        assert "telemetry" not in plain.to_dict()
        assert StudyResult.from_dict(plain.to_dict()).telemetry is None
        # equals() ignores telemetry: same numbers, different timings.
        assert traced.equals(plain)
