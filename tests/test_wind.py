"""Tests for the gust model and its effect on the stop experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.obstacle_stop import ObstacleStopConfig, run_obstacle_stop
from repro.sim.wind import OrnsteinUhlenbeckGust
from repro.units import require_positive  # noqa: F401  (API presence)


class TestGustProcess:
    def test_zero_sigma_is_constant(self):
        gust = OrnsteinUhlenbeckGust(sigma_ms=0.0, mean_ms=1.5)
        for _ in range(100):
            assert gust.step(0.01) == 1.5

    def test_stationary_statistics(self):
        rng = np.random.default_rng(0)
        gust = OrnsteinUhlenbeckGust(sigma_ms=2.0, tau_s=0.5, rng=rng)
        samples = [gust.step(0.01) for _ in range(200_000)]
        warm = np.asarray(samples[5000:])
        assert warm.mean() == pytest.approx(0.0, abs=0.1)
        assert warm.std() == pytest.approx(2.0, rel=0.05)

    def test_mean_offset(self):
        rng = np.random.default_rng(1)
        gust = OrnsteinUhlenbeckGust(
            sigma_ms=1.0, tau_s=0.5, mean_ms=3.0, rng=rng
        )
        samples = [gust.step(0.01) for _ in range(100_000)]
        assert np.mean(samples[5000:]) == pytest.approx(3.0, abs=0.1)

    def test_correlation_time(self):
        # Autocorrelation at lag tau should be ~exp(-1).
        rng = np.random.default_rng(2)
        tau = 0.5
        dt = 0.01
        gust = OrnsteinUhlenbeckGust(sigma_ms=1.0, tau_s=tau, rng=rng)
        samples = np.asarray([gust.step(dt) for _ in range(300_000)])
        samples = samples[10_000:]
        lag = int(tau / dt)
        rho = np.corrcoef(samples[:-lag], samples[lag:])[0, 1]
        assert rho == pytest.approx(np.exp(-1.0), abs=0.05)

    def test_step_invariance_of_variance(self):
        # Exact discretization: halving dt must not inflate variance.
        def std_with_dt(dt: float) -> float:
            rng = np.random.default_rng(3)
            gust = OrnsteinUhlenbeckGust(sigma_ms=1.0, tau_s=0.3, rng=rng)
            n = int(500.0 / dt)
            return float(np.std([gust.step(dt) for _ in range(n)][1000:]))

        assert std_with_dt(0.01) == pytest.approx(
            std_with_dt(0.002), rel=0.05
        )


class TestGustyFlights:
    def test_tailwind_lengthens_stop(self, uav_a):
        calm = run_obstacle_stop(
            uav_a,
            ObstacleStopConfig(cruise_velocity=1.8, detection_noise_m=0.0),
            seed=4,
        )
        tailwind = run_obstacle_stop(
            uav_a,
            ObstacleStopConfig(
                cruise_velocity=1.8,
                detection_noise_m=0.0,
                mean_wind_ms=2.0,  # steady tailwind kills brake drag
            ),
            seed=4,
        )
        assert tailwind.stop_position_m > calm.stop_position_m

    def test_gusts_add_dispersion(self, uav_a):
        def stop(seed: int, sigma: float) -> float:
            config = ObstacleStopConfig(
                cruise_velocity=1.8, gust_sigma_ms=sigma
            )
            return run_obstacle_stop(uav_a, config, seed=seed).stop_position_m

        calm = [stop(seed, 0.0) for seed in range(6)]
        gusty = [stop(seed, 1.5) for seed in range(6)]
        assert np.std(gusty) > np.std(calm)

    def test_default_config_unchanged_by_wind_support(self, uav_a):
        # The zero-gust path must be bit-identical to the pre-wind sim.
        config = ObstacleStopConfig(cruise_velocity=1.8)
        a = run_obstacle_stop(uav_a, config, seed=5)
        b = run_obstacle_stop(uav_a, config, seed=5)
        assert a.stop_position_m == b.stop_position_m
