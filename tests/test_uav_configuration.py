"""Tests for whole-vehicle configuration accounting and builders."""

from __future__ import annotations

import pytest

from repro.compute.platforms import get_platform
from repro.errors import ConfigurationError
from repro.uav.presets import custom_s500, dji_spark


class TestMassAccounting:
    def test_table1_uav_a(self, uav_a):
        assert uav_a.payload_mass_g == 590.0
        assert uav_a.total_mass_g == 1620.0
        assert uav_a.total_thrust_g == pytest.approx(1740.0)
        assert uav_a.thrust_to_weight == pytest.approx(1740.0 / 1620.0)

    def test_table1_all_variants(self):
        expected = {"A": 1620.0, "B": 1830.0, "C": 1670.0, "D": 1720.0}
        for variant, total in expected.items():
            assert custom_s500(variant).total_mass_g == total

    def test_component_sum_without_override(self, spark_ncs):
        expected = (
            spark_ncs.battery.mass_g
            + spark_ncs.sensor.mass_g
            + spark_ncs.compute.flight_mass_g
        )
        assert spark_ncs.payload_mass_g == pytest.approx(expected)

    def test_extra_payload_adds(self, spark_ncs):
        heavier = spark_ncs.with_extra_payload(100.0)
        assert heavier.total_mass_g == pytest.approx(
            spark_ncs.total_mass_g + 100.0
        )

    def test_redundancy_multiplies_compute(self, pelican_tx2):
        dmr = pelican_tx2.with_redundancy(2)
        assert dmr.compute_payload_g == pytest.approx(
            2 * pelican_tx2.compute_payload_g
        )
        assert dmr.compute_redundancy == 2

    def test_invalid_redundancy(self, pelican_tx2):
        with pytest.raises(ConfigurationError):
            pelican_tx2.with_redundancy(0)


class TestPhysicsDerivation:
    def test_uav_a_acceleration(self, uav_a):
        # g * 120/1620 with the braking floor not engaged.
        assert uav_a.max_acceleration == pytest.approx(0.7264, abs=1e-3)

    def test_uav_b_floor_engaged(self):
        uav_b = custom_s500("B")
        assert uav_b.max_acceleration == pytest.approx(0.3938, abs=1e-3)

    def test_heavier_is_slower(self, spark_ncs, spark_agx):
        assert spark_agx.max_acceleration < spark_ncs.max_acceleration


class TestBuilders:
    def test_with_compute_swaps_platform(self, spark_ncs):
        agx = spark_ncs.with_compute(get_platform("jetson-agx-30w"))
        assert agx.compute.name == "jetson-agx-30w"
        assert agx.total_mass_g > spark_ncs.total_mass_g
        assert "jetson-agx-30w" in agx.name

    def test_with_sensor_range(self, spark_ncs):
        shorter = spark_ncs.with_sensor_range(4.0)
        assert shorter.sensor.range_m == 4.0
        assert shorter.sensor.framerate_hz == spark_ncs.sensor.framerate_hz

    def test_builders_leave_original(self, spark_ncs):
        spark_ncs.with_extra_payload(500.0)
        spark_ncs.with_redundancy(3)
        assert spark_ncs.extra_payload_g == 0.0
        assert spark_ncs.compute_redundancy == 1


class TestF1Construction:
    def test_f1_uses_sensor_and_fc_rates(self, pelican_tx2):
        model = pelican_tx2.f1(178.0)
        assert model.pipeline.f_sensor_hz == 60.0
        assert model.pipeline.f_compute_hz == 178.0
        assert model.pipeline.f_control_hz == 1000.0
        assert model.sensing_range_m == 3.0

    def test_f1_custom_knee_strategy(self, pelican_tx2):
        from repro.core.knee import LinearIntersectionKnee

        model = pelican_tx2.f1(178.0, knee_strategy=LinearIntersectionKnee())
        default = pelican_tx2.f1(178.0)
        assert model.knee.throughput_hz < default.knee.throughput_hz

    def test_describe_includes_budget(self, uav_a):
        text = uav_a.describe()
        assert "1620" in text
        assert "1740" in text


class TestSparkPreset:
    def test_spark_sensor_defaults(self):
        uav = dji_spark()
        assert uav.sensor.range_m == 10.0
        assert uav.sensor.framerate_hz == 60.0
        assert uav.compute.name == "intel-ncs"
