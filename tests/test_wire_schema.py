"""Runtime wire-schema guard: shapes of live documents vs the snapshot.

RPL003 watches the *source* of the dict builders in
``repro.io.serialization``; this suite watches what they *emit*.  Both
halves share the committed snapshot at
``tests/data/wire_fingerprints.json``.  A failure here means the wire
format moved: bump the matching ``*_VERSION`` constant in
``repro/io/serialization.py`` (or ``repro/obs``), then regenerate the
snapshot with ``reprolint --update-wire-snapshot`` and commit it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import wire
from repro.io import serialization as ser

REPO_ROOT = Path(__file__).parent.parent
SNAPSHOT_PATH = REPO_ROOT / "tests" / "data" / "wire_fingerprints.json"

BUMP_HINT = (
    "wire format changed without a snapshot refresh: bump the matching "
    "*_VERSION constant and run 'reprolint --update-wire-snapshot'"
)


@pytest.fixture(scope="module")
def snapshot():
    return wire.load_snapshot(SNAPSHOT_PATH)


@pytest.fixture(scope="module")
def live_shapes():
    return wire.runtime_shapes()


def test_snapshot_exists_and_loads(snapshot):
    assert snapshot["version"] == wire.SNAPSHOT_VERSION
    assert set(snapshot["builders"]) == {b.name for b in wire.BUILDER_SPECS}


def test_runtime_shapes_match_snapshot(snapshot, live_shapes):
    assert set(live_shapes) == set(snapshot["shapes"]), BUMP_HINT
    for document, shape in live_shapes.items():
        assert shape == snapshot["shapes"][document], (
            f"wire document {document!r} changed shape; {BUMP_HINT}"
        )


def test_builder_fingerprints_match_snapshot(snapshot):
    source = Path(ser.__file__).read_text(encoding="utf-8")
    live = wire.ast_snapshot_of_source(source)
    for name, entry in snapshot["builders"].items():
        assert name in live, f"builder {name!r} removed; {BUMP_HINT}"
        assert live[name]["ast_sha256"] == entry["ast_sha256"], (
            f"builder {name!r} edited; {BUMP_HINT}"
        )


def test_snapshot_versions_match_live_constants(snapshot):
    live_versions = {
        "MANIFEST_VERSION": ser.MANIFEST_VERSION,
        "DISTRIB_PROTOCOL_VERSION": ser.DISTRIB_PROTOCOL_VERSION,
        "TRACE_EVENT_VERSION": ser.TRACE_EVENT_VERSION,
        "TELEMETRY_VERSION": ser.TELEMETRY_VERSION,
        "SERVE_PROTOCOL_VERSION": ser.SERVE_PROTOCOL_VERSION,
    }
    for entry in snapshot["builders"].values():
        const = entry["version_const"]
        assert entry["version"] == live_versions[const], (
            f"snapshot records {const}={entry['version']!r} but the live "
            f"constant is {live_versions[const]!r}; {BUMP_HINT}"
        )


def _lease_doc(**overrides):
    doc = {
        "version": ser.DISTRIB_PROTOCOL_VERSION,
        "kind": "lease",
        "spec_digest": "a" * 32,
        "owner": "host-a-12041",
        "shard_index": 3,
        "lease_ttl_s": 30.0,
        "heartbeats": 7,
    }
    doc.update(overrides)
    return {k: v for k, v in doc.items() if v is not ...}


@pytest.mark.parametrize(
    "doc",
    [
        "not a mapping",
        _lease_doc(version=99),
        _lease_doc(kind="manifest"),
        _lease_doc(spec_digest=...),
        _lease_doc(spec_digest=""),
        _lease_doc(spec_digest=7),
        _lease_doc(owner=""),
        _lease_doc(shard_index=-1),
        _lease_doc(shard_index=2.5),
        _lease_doc(lease_ttl_s=0),
        _lease_doc(lease_ttl_s=True),
        _lease_doc(lease_ttl_s="30"),
        _lease_doc(heartbeats=-1),
        _lease_doc(heartbeats=...),
    ],
    ids=[
        "non-mapping", "future-version", "wrong-kind", "missing-digest",
        "empty-digest", "non-str-digest", "empty-owner", "negative-index",
        "float-index", "zero-ttl", "bool-ttl", "str-ttl",
        "negative-heartbeats", "missing-heartbeats",
    ],
)
def test_lease_record_from_dict_rejects_damage(doc):
    # The torn-lease contract: validation failures become clean
    # ConfigurationErrors, which the lease store downgrades to
    # "corrupt → claimable" — so this rejection matrix is the crash
    # barrier for every byte-level way a lease file can be damaged.
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="lease"):
        ser.lease_record_from_dict(doc)


def test_lease_record_round_trips():
    record = ser.lease_record_from_dict(_lease_doc())
    assert ser.lease_record_to_dict(record) == _lease_doc()


def test_versioned_documents_carry_their_version(live_shapes):
    # The top-level wire envelopes state their version on the wire;
    # trace events ride inside a versioned trace file instead.
    assert live_shapes["shard_manifest"]["version"] == "int"
    assert live_shapes["telemetry"]["version"] == "int"
    assert live_shapes["lease_record"]["version"] == "int"
    assert live_shapes["lease_record"]["kind"] == "str"
    for kind in ("ack", "status", "progress", "error", "stats"):
        assert live_shapes[f"serve_{kind}"]["version"] == "int"
        assert live_shapes[f"serve_{kind}"]["kind"] == "str"
