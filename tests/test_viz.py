"""Tests for the SVG/ASCII plotting substrate."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.viz.ascii_plot import ascii_plot
from repro.viz.axes import Axis, LinearScale, LogScale
from repro.viz.lineplot import LinePlot
from repro.viz.svg import SvgCanvas


class TestSvgCanvas:
    def test_valid_xml(self):
        canvas = SvgCanvas(200, 100)
        canvas.line(0, 0, 10, 10)
        canvas.circle(5, 5, 2)
        canvas.text(10, 20, "hello")
        canvas.polyline([(0, 0), (5, 5), (10, 0)])
        root = ET.fromstring(canvas.to_svg())
        assert root.tag.endswith("svg")
        assert root.attrib["width"] == "200"

    def test_text_escaping(self):
        canvas = SvgCanvas(100, 100)
        canvas.text(0, 0, 'a < b & "c"')
        svg = canvas.to_svg()
        assert "&lt;" in svg and "&amp;" in svg and "&quot;" in svg
        ET.fromstring(svg)  # still parses

    def test_save(self, tmp_path):
        canvas = SvgCanvas(100, 100)
        path = tmp_path / "out.svg"
        canvas.save(str(path))
        assert path.read_text().startswith("<?xml")

    def test_short_polyline_ignored(self):
        canvas = SvgCanvas(100, 100)
        before = canvas.to_svg()
        canvas.polyline([(1, 1)])
        assert canvas.to_svg() == before


class TestScales:
    def test_linear_normalize(self):
        scale = LinearScale(0.0, 10.0)
        assert scale.normalize(5.0) == 0.5
        assert scale.normalize(0.0) == 0.0

    def test_linear_ticks_are_nice(self):
        ticks = LinearScale(0.0, 10.0).ticks()
        assert 0.0 in ticks and 10.0 in ticks
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform spacing

    def test_log_normalize(self):
        scale = LogScale(1.0, 100.0)
        assert scale.normalize(10.0) == pytest.approx(0.5)

    def test_log_ticks_are_decades(self):
        ticks = LogScale(0.5, 2000.0).ticks()
        assert ticks == [1.0, 10.0, 100.0, 1000.0]

    def test_invalid_domains(self):
        with pytest.raises(ConfigurationError):
            LinearScale(5.0, 5.0)
        with pytest.raises(ConfigurationError):
            LogScale(0.0, 10.0)

    @given(
        lo=st.floats(min_value=-1e3, max_value=1e3),
        span=st.floats(min_value=1e-3, max_value=1e3),
        frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_linear_normalize_in_unit_interval(self, lo, span, frac):
        scale = LinearScale(lo, lo + span)
        value = lo + frac * span
        assert -1e-9 <= scale.normalize(value) <= 1.0 + 1e-9

    def test_axis_pixel_mapping_inverted_range(self):
        axis = Axis("y", LinearScale(0.0, 10.0))
        # SVG y grows downward: the pixel range is (bottom, top).
        assert axis.to_pixels(0.0, (400.0, 40.0)) == 400.0
        assert axis.to_pixels(10.0, (400.0, 40.0)) == 40.0


class TestLinePlot:
    def _plot(self) -> LinePlot:
        plot = LinePlot(
            title="t", x_label="x", y_label="y", log_x=True
        )
        plot.add_series("curve", [1.0, 10.0, 100.0], [1.0, 5.0, 6.0])
        plot.add_marker(10.0, 5.0, label="knee")
        plot.add_hline(6.0, label="roof")
        plot.add_vline(10.0, label="k")
        return plot

    def test_render_valid_svg(self):
        svg = self._plot().render().to_svg()
        ET.fromstring(svg)
        assert "curve" in svg
        assert "knee" in svg
        assert "roof" in svg

    def test_save(self, tmp_path):
        path = self._plot().save(str(tmp_path / "plot.svg"))
        assert path.endswith("plot.svg")
        ET.fromstring(open(path).read())

    def test_empty_plot_rejected(self):
        plot = LinePlot(title="t", x_label="x", y_label="y")
        with pytest.raises(ConfigurationError, match="nothing to plot"):
            plot.render()

    def test_mismatched_series_rejected(self):
        plot = LinePlot(title="t", x_label="x", y_label="y")
        with pytest.raises(ConfigurationError):
            plot.add_series("bad", [1.0, 2.0], [1.0])

    def test_single_point_series_rejected(self):
        plot = LinePlot(title="t", x_label="x", y_label="y")
        with pytest.raises(ConfigurationError):
            plot.add_series("dot", [1.0], [1.0])


class TestAsciiPlot:
    def test_contains_glyphs_and_legend(self):
        text = ascii_plot(
            [("a", [1, 2, 3], [1, 2, 3]), ("b", [1, 2, 3], [3, 2, 1])],
            width=40, height=10,
        )
        assert "*" in text and "o" in text
        assert "a" in text and "b" in text

    def test_log_x(self):
        text = ascii_plot(
            [("c", [1.0, 10.0, 100.0], [0.0, 1.0, 2.0])],
            width=40, height=8, log_x=True, x_label="f",
        )
        assert "(log)" in text

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([("c", [0.0, 1.0], [0.0, 1.0])], log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([])

    def test_tiny_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([("a", [1, 2], [1, 2])], width=5, height=2)

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([("flat", [0.0, 1.0], [2.0, 2.0])])
        assert "flat" in text
