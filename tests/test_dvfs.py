"""Tests for the DVFS throughput-for-TDP trade."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compute.dvfs import BalancedDesign, DvfsModel, balance_to_knee
from repro.compute.platforms import get_platform
from repro.errors import InfeasibleDesignError
from repro.uav.presets import asctec_pelican, dji_spark


class TestDvfsModel:
    def test_full_scale_is_identity(self):
        model = DvfsModel()
        assert model.power_fraction(1.0) == pytest.approx(1.0)
        assert model.throughput_fraction(1.0) == 1.0

    def test_static_floor(self):
        model = DvfsModel(static_fraction=0.2, min_scale=0.01)
        # Even near-zero frequency keeps the leakage floor.
        assert model.power_fraction(0.011) > 0.2

    def test_cubic_dynamic_term(self):
        model = DvfsModel(exponent=3.0, static_fraction=0.0)
        assert model.power_fraction(0.5) == pytest.approx(0.125)

    def test_scaled_platform_shrinks_heatsink(self):
        agx = get_platform("jetson-agx-30w")
        scaled = DvfsModel().scaled_platform(agx, 0.5)
        assert scaled.tdp_w < agx.tdp_w
        assert scaled.heatsink_mass_g < agx.heatsink_mass_g
        assert "0.50x" in scaled.name

    def test_out_of_range_scale_rejected(self):
        model = DvfsModel(min_scale=0.2)
        with pytest.raises(InfeasibleDesignError):
            model.power_fraction(0.1)
        with pytest.raises(InfeasibleDesignError):
            model.power_fraction(1.5)

    @given(scale=st.floats(min_value=0.35, max_value=1.0))
    def test_power_saves_more_than_throughput(self, scale):
        # The point of the trade: P drops superlinearly vs f — except
        # close to the leakage floor, hence the 0.35 lower bound.
        model = DvfsModel()
        assert model.power_fraction(scale) <= (
            model.throughput_fraction(scale) + 1e-12
        )

    def test_leakage_floor_dominates_at_min_scale(self):
        # Near the floor, static power makes further slowing a bad
        # deal: power fraction exceeds throughput fraction.
        model = DvfsModel(static_fraction=0.2, min_scale=0.2)
        assert model.power_fraction(0.2) > model.throughput_fraction(0.2)


class TestBalanceToKnee:
    def test_spark_agx_scenario(self):
        # Sec. VI-A: the AGX is grossly over-provisioned on the Spark.
        uav = dji_spark(get_platform("jetson-agx-30w"))
        balanced = balance_to_knee(uav, 230.0)
        assert isinstance(balanced, BalancedDesign)
        assert balanced.scale < 1.0
        assert balanced.tdp_saved_w > 10.0
        assert balanced.heatsink_saved_g > 50.0
        assert balanced.velocity_gain_pct > 50.0
        assert balanced.roof_velocity_after > balanced.roof_velocity_before

    def test_balanced_design_meets_its_knee(self):
        uav = asctec_pelican(get_platform("jetson-tx2"), sensor_range_m=3.0)
        balanced = balance_to_knee(uav, 178.0)
        model = balanced.uav.f1(balanced.f_compute_hz)
        # At or above the (re-weighted) knee, within bisection slack.
        assert balanced.f_compute_hz >= model.knee.throughput_hz * 0.999

    def test_under_provisioned_rejected(self):
        uav = asctec_pelican(get_platform("jetson-tx2"), sensor_range_m=3.0)
        with pytest.raises(InfeasibleDesignError, match="nothing to trade"):
            balance_to_knee(uav, 1.1)  # SPA is below the knee

    def test_min_scale_clamp(self):
        # With a generous floor the solver may hit min_scale; the
        # result must still be a valid, faster design.
        uav = dji_spark(get_platform("jetson-agx-30w"))
        balanced = balance_to_knee(
            uav, 230.0, dvfs=DvfsModel(min_scale=0.6)
        )
        assert balanced.scale >= 0.6
        assert balanced.velocity_gain_pct > 0.0
