"""Tests for bound classification, ceilings and optimality verdicts."""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundKind, ceilings, classify_bound
from repro.core.knee import KneePoint
from repro.core.optimality import DesignStatus, assess_design
from repro.core.safety import safe_velocity_at_rate
from repro.core.throughput import SensorComputeControl

KNEE = KneePoint(throughput_hz=43.0, velocity=4.1, fraction_of_roof=0.984)


class TestClassifyBound:
    def test_physics_bound_beyond_knee(self):
        pipeline = SensorComputeControl(60.0, 178.0)
        assert classify_bound(pipeline, 43.0) is BoundKind.PHYSICS

    def test_compute_bound(self):
        pipeline = SensorComputeControl(60.0, 1.1)
        assert classify_bound(pipeline, 43.0) is BoundKind.COMPUTE

    def test_sensor_bound(self):
        pipeline = SensorComputeControl(30.0, 178.0)
        assert classify_bound(pipeline, 43.0) is BoundKind.SENSOR

    def test_control_bound(self):
        pipeline = SensorComputeControl(60.0, 55.0, f_control_hz=20.0)
        assert classify_bound(pipeline, 43.0) is BoundKind.CONTROL

    def test_exactly_at_knee_is_physics(self):
        pipeline = SensorComputeControl(43.0, 178.0)
        assert classify_bound(pipeline, 43.0) is BoundKind.PHYSICS


class TestCeilings:
    def test_sub_knee_stages_contribute(self):
        pipeline = SensorComputeControl(30.0, 10.0)
        result = ceilings(pipeline, 3.0, 2.891, 43.0)
        stages = [c.stage for c in result]
        assert stages == ["compute", "sensor"]  # slowest first
        assert result[0].velocity < result[1].velocity

    def test_ceiling_velocity_matches_eq4(self):
        pipeline = SensorComputeControl(30.0, 10.0)
        result = ceilings(pipeline, 3.0, 2.891, 43.0)
        assert result[0].velocity == pytest.approx(
            safe_velocity_at_rate(10.0, 3.0, 2.891)
        )

    def test_fast_stages_impose_no_ceiling(self):
        pipeline = SensorComputeControl(60.0, 178.0)
        assert ceilings(pipeline, 3.0, 2.891, 43.0) == []


class TestOptimality:
    def test_under_provisioned_spa(self):
        report = assess_design(1.1, KNEE, velocity=2.3)
        assert report.status is DesignStatus.UNDER_PROVISIONED
        assert report.required_speedup == pytest.approx(43.0 / 1.1)
        assert report.excess_factor == 1.0
        assert "39" in report.summary()

    def test_over_provisioned_dronet(self):
        report = assess_design(178.0, KNEE, velocity=4.15)
        assert report.status is DesignStatus.OVER_PROVISIONED
        assert report.excess_factor == pytest.approx(178.0 / 43.0)
        assert report.required_speedup == 1.0

    def test_optimal_within_tolerance(self):
        report = assess_design(44.0, KNEE, velocity=4.1, tolerance=0.05)
        assert report.status is DesignStatus.OPTIMAL
        assert "optimal" in report.summary()

    def test_tolerance_boundary(self):
        low = assess_design(43.0 * 0.94, KNEE, velocity=4.0, tolerance=0.05)
        assert low.status is DesignStatus.UNDER_PROVISIONED

    def test_velocity_gap(self):
        report = assess_design(1.1, KNEE, velocity=2.3)
        assert report.velocity_gap == pytest.approx(4.1 - 2.3)

    def test_gap_clamped_at_zero_when_beyond_knee(self):
        report = assess_design(100.0, KNEE, velocity=4.2)
        assert report.velocity_gap == 0.0
