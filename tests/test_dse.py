"""Tests for design-space exploration: space, explorer, Pareto,
selection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.explorer import evaluate, explore, results_table
from repro.dse.pareto import MAX_VELOCITY, MIN_MASS, MIN_TDP, pareto_front
from repro.dse.selector import SelectionCriteria, select_best
from repro.dse.space import Candidate, DesignSpace
from repro.errors import ConfigurationError, InfeasibleDesignError


@pytest.fixture(scope="module")
def small_space() -> DesignSpace:
    return DesignSpace(
        uav_names=("dji-spark", "asctec-pelican"),
        compute_names=("intel-ncs", "jetson-tx2", "raspi4"),
        algorithm_names=("dronet", "trailnet"),
    )


@pytest.fixture(scope="module")
def results(small_space):
    return explore(small_space)


class TestDesignSpace:
    def test_size(self, small_space):
        assert len(small_space) == 2 * 3 * 2

    def test_candidates_complete_and_unique(self, small_space):
        keys = [c.key for c in small_space.candidates()]
        assert len(keys) == len(small_space)
        assert len(set(keys)) == len(keys)

    def test_candidate_composition(self, small_space):
        candidate = next(iter(small_space.candidates()))
        assert candidate.uav.compute.name == candidate.compute_name
        assert candidate.f_compute_hz > 0

    def test_empty_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignSpace((), ("jetson-tx2",), ("dronet",))


class TestExplorer:
    def test_sorted_by_velocity(self, results):
        velocities = [r.safe_velocity for r in results]
        assert velocities == sorted(velocities, reverse=True)

    def test_evaluate_consistent_with_f1(self, small_space):
        candidate = next(iter(small_space.candidates()))
        result = evaluate(candidate)
        model = candidate.uav.f1(candidate.f_compute_hz)
        assert result.safe_velocity == model.safe_velocity
        assert result.bound == model.bound

    def test_table_renders_all_rows(self, results):
        text = results_table(results)
        assert len(text.splitlines()) == len(results) + 2

    def test_labels_unique(self, results):
        labels = [r.label for r in results]
        assert len(set(labels)) == len(labels)


class TestPareto:
    def test_front_nonempty_subset(self, results):
        front = pareto_front(results, (MAX_VELOCITY, MIN_TDP))
        assert front
        assert set(r.label for r in front) <= set(r.label for r in results)

    def test_no_member_dominated(self, results):
        front = pareto_front(results, (MAX_VELOCITY, MIN_TDP))
        for a in front:
            for b in results:
                dominated = (
                    b.safe_velocity >= a.safe_velocity
                    and b.compute_tdp_w <= a.compute_tdp_w
                    and (
                        b.safe_velocity > a.safe_velocity
                        or b.compute_tdp_w < a.compute_tdp_w
                    )
                )
                assert not dominated, (a.label, b.label)

    def test_single_objective_front_is_argmax(self, results):
        front = pareto_front(results, (MAX_VELOCITY,))
        best = max(results, key=lambda r: r.safe_velocity)
        assert front[0].safe_velocity == best.safe_velocity

    def test_three_objectives(self, results):
        front = pareto_front(results, (MAX_VELOCITY, MIN_TDP, MIN_MASS))
        assert front  # nonempty and well-defined

    def test_requires_objectives(self, results):
        with pytest.raises(ConfigurationError):
            pareto_front(results, ())

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_front_invariant_under_shuffle(self, results, seed):
        import random

        shuffled = list(results)
        random.Random(seed).shuffle(shuffled)
        front_a = {r.label for r in pareto_front(results)}
        front_b = {r.label for r in pareto_front(shuffled)}
        assert front_a == front_b


class TestSelector:
    def test_unconstrained_picks_fastest(self, results):
        best = select_best(results)
        assert best.safe_velocity == max(r.safe_velocity for r in results)

    def test_mass_constraint(self, results):
        criteria = SelectionCriteria(max_total_mass_g=400.0)
        best = select_best(results, criteria)
        assert best.total_mass_g <= 400.0

    def test_tdp_constraint(self, results):
        criteria = SelectionCriteria(max_compute_tdp_w=2.0)
        best = select_best(results, criteria)
        assert best.compute_tdp_w <= 2.0

    def test_infeasible_raises(self, results):
        criteria = SelectionCriteria(min_safe_velocity=1e9)
        with pytest.raises(InfeasibleDesignError):
            select_best(results, criteria)
