"""Tests for the body-dynamics substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.physics import QuadraticDrag
from repro.dynamics.body import LongitudinalBody
from repro.dynamics.integrator import euler_step, rk4_step
from repro.dynamics.motor import FirstOrderMotor
from repro.dynamics.quadrotor import (
    PlanarQuadrotor,
    QuadrotorParams,
    QuadrotorState,
)


class TestIntegrators:
    def test_rk4_exact_on_linear(self):
        # dy/dt = 2 -> y(t) = 2t, both integrators exact.
        f = lambda t, y: np.array([2.0])
        y = np.array([0.0])
        for _ in range(10):
            y = rk4_step(f, 0.0, y, 0.1)
        assert y[0] == pytest.approx(2.0)

    def test_rk4_beats_euler_on_oscillator(self):
        # Harmonic oscillator: energy drift comparison over one period.
        def f(t, y):
            return np.array([y[1], -y[0]])

        y_rk4 = np.array([1.0, 0.0])
        y_euler = np.array([1.0, 0.0])
        dt = 0.05
        for i in range(int(2 * math.pi / dt)):
            y_rk4 = rk4_step(f, i * dt, y_rk4, dt)
            y_euler = euler_step(f, i * dt, y_euler, dt)
        exact = np.array([1.0, 0.0])
        assert np.linalg.norm(y_rk4 - exact) < np.linalg.norm(y_euler - exact)


class TestFirstOrderMotor:
    def test_converges_to_command(self):
        motor = FirstOrderMotor(max_thrust_g=500.0, tau_s=0.05)
        motor.command(400.0)
        for _ in range(1000):
            motor.step(0.001)
        assert motor.thrust_g == pytest.approx(400.0, rel=1e-3)

    def test_saturates_at_rated_pull(self):
        motor = FirstOrderMotor(max_thrust_g=500.0, tau_s=0.0)
        motor.command(9000.0)
        motor.step(0.001)
        assert motor.thrust_g == 500.0

    def test_never_negative(self):
        motor = FirstOrderMotor(max_thrust_g=500.0, tau_s=0.0,
                                initial_thrust_g=100.0)
        motor.command(-50.0)
        motor.step(0.001)
        assert motor.thrust_g == 0.0

    def test_zero_tau_is_instant(self):
        motor = FirstOrderMotor(max_thrust_g=500.0, tau_s=0.0)
        motor.command(123.0)
        motor.step(0.001)
        assert motor.thrust_g == 123.0


class TestLongitudinalBody:
    def _run_brake(self, body: LongitudinalBody, v0: float) -> float:
        """Brake from v0 to rest; return stopping distance."""
        body.v = v0
        body._a_tracked = -body.a_limit  # pre-settled braking attitude
        body.command_acceleration(-body.a_limit)
        start = body.x
        while body.v > 0:
            body.step(0.001)
        return body.x - start

    def test_ideal_braking_distance(self):
        body = LongitudinalBody(
            total_mass_g=1620.0, a_limit=0.7264,
            drag=None, pitch_lag_s=0.0,
        )
        distance = self._run_brake(body, 2.0)
        assert distance == pytest.approx(2.0**2 / (2 * 0.7264), rel=0.01)

    def test_pitch_lag_lengthens_stop(self):
        def stop_with_lag(lag: float) -> float:
            body = LongitudinalBody(
                total_mass_g=1620.0, a_limit=0.7264,
                drag=None, pitch_lag_s=lag,
            )
            body.v = 2.0
            body.command_acceleration(-body.a_limit)
            while body.v > 0:
                body.step(0.001)
            return body.x

        assert stop_with_lag(0.3) > stop_with_lag(0.0)

    def test_drag_shortens_stop(self):
        def stop_with_drag(cd_area: float) -> float:
            body = LongitudinalBody(
                total_mass_g=1620.0, a_limit=0.7264,
                drag=QuadraticDrag(cd_area_m2=cd_area), pitch_lag_s=0.0,
            )
            return self._run_brake(body, 2.0)

        assert stop_with_drag(0.2) < stop_with_drag(0.0)

    def test_command_clamped_to_limit(self):
        body = LongitudinalBody(total_mass_g=1000.0, a_limit=1.0)
        body.command_acceleration(50.0)
        assert body.commanded_acceleration == 1.0
        body.command_acceleration(-50.0)
        assert body.commanded_acceleration == -1.0

    def test_velocity_never_negative(self):
        body = LongitudinalBody(
            total_mass_g=1000.0, a_limit=2.0, pitch_lag_s=0.0
        )
        body.command_acceleration(-2.0)
        for _ in range(2000):
            body.step(0.001)
        assert body.v == 0.0
        assert body.stopped

    def test_acceleration_phase_tracks_setpoint(self):
        body = LongitudinalBody(
            total_mass_g=1000.0, a_limit=2.0, pitch_lag_s=0.0
        )
        body.command_acceleration(2.0)
        for _ in range(1000):
            body.step(0.001)
        assert body.v == pytest.approx(2.0, rel=0.01)

    @given(v0=st.floats(min_value=0.5, max_value=10.0),
           a=st.floats(min_value=0.3, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_braking_distance_formula_property(self, v0, a):
        body = LongitudinalBody(
            total_mass_g=1500.0, a_limit=a, drag=None, pitch_lag_s=0.0
        )
        distance = self._run_brake(body, v0)
        assert distance == pytest.approx(v0 * v0 / (2 * a), rel=0.02)


class TestPlanarQuadrotor:
    def _hover_params(self) -> QuadrotorParams:
        return QuadrotorParams(
            total_mass_g=1000.0,
            arm_length_m=0.2,
            max_thrust_per_pair_g=1000.0,
        )

    def test_hover_is_stationary(self):
        quad = PlanarQuadrotor(self._hover_params())
        hover = quad.params.hover_thrust_per_pair_g
        quad.command(hover, hover)
        for _ in range(500):
            quad.step(0.001)
        assert abs(quad.state.z) < 0.01
        assert abs(quad.state.vz) < 0.05
        assert abs(quad.state.theta) < 1e-6

    def test_excess_thrust_climbs(self):
        quad = PlanarQuadrotor(self._hover_params())
        hover = quad.params.hover_thrust_per_pair_g
        quad.command(hover * 1.2, hover * 1.2)
        for _ in range(500):
            quad.step(0.001)
        assert quad.state.vz > 0.1

    def test_differential_thrust_pitches_and_translates(self):
        quad = PlanarQuadrotor(self._hover_params())
        hover = quad.params.hover_thrust_per_pair_g
        quad.command(hover - 30.0, hover + 30.0)  # rear up -> nose down
        for _ in range(300):
            quad.step(0.001)
        assert quad.state.theta > 0.0
        assert quad.state.vx > 0.0

    def test_state_array_roundtrip(self):
        state = QuadrotorState(x=1, z=2, vx=3, vz=4, theta=0.1, q=0.2)
        assert QuadrotorState.from_array(state.as_array()) == state
