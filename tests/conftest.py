"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.compute.platforms import get_platform
from repro.uav.presets import asctec_pelican, custom_s500, dji_spark, nano_uav


@pytest.fixture
def uav_a():
    """Table I UAV-A (Ras-Pi4, 590 g payload)."""
    return custom_s500("A")


@pytest.fixture
def spark_ncs():
    """DJI Spark carrying the Intel NCS."""
    return dji_spark(get_platform("intel-ncs"))


@pytest.fixture
def spark_agx():
    """DJI Spark carrying the Nvidia AGX at 30 W."""
    return dji_spark(get_platform("jetson-agx-30w"))


@pytest.fixture
def pelican_tx2():
    """AscTec Pelican carrying a TX2 with the case-B 3 m sensor."""
    return asctec_pelican(get_platform("jetson-tx2"), sensor_range_m=3.0)


@pytest.fixture
def nano_pulp():
    """Nano-UAV carrying the PULP GAP8."""
    return nano_uav(get_platform("pulp-gap8"))
