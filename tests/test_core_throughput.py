"""Tests for the Eq. 1-3 pipeline throughput model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.throughput import (
    SensorComputeControl,
    action_throughput,
    pipeline_latency_bounds,
)
from repro.errors import ConfigurationError

RATE = st.floats(min_value=0.01, max_value=10_000.0)


class TestActionThroughput:
    def test_min_of_rates(self):
        assert action_throughput(60.0, 178.0, 1000.0) == 60.0

    def test_single_stage(self):
        assert action_throughput(42.0) == 42.0

    def test_no_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            action_throughput()

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            action_throughput(10.0, 0.0)

    @given(rates=st.lists(RATE, min_size=1, max_size=6))
    def test_equals_builtin_min(self, rates):
        assert action_throughput(*rates) == min(rates)


class TestLatencyBounds:
    def test_bounds_order(self):
        lower, upper = pipeline_latency_bounds([0.016, 0.005, 0.001])
        assert lower == pytest.approx(0.016)
        assert upper == pytest.approx(0.022)

    @given(lats=st.lists(st.floats(min_value=1e-4, max_value=10.0),
                         min_size=1, max_size=6))
    def test_lower_le_upper(self, lats):
        lower, upper = pipeline_latency_bounds(lats)
        assert lower <= upper
        assert lower == max(lats)
        assert upper == pytest.approx(sum(lats))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            pipeline_latency_bounds([])


class TestSensorComputeControl:
    def test_paper_pelican_dronet(self):
        # 60 FPS sensor, DroNet 178 Hz, 1 kHz control: sensor binds.
        pipeline = SensorComputeControl(60.0, 178.0)
        assert pipeline.action_throughput_hz == 60.0
        assert pipeline.bottleneck_stage == "sensor"

    def test_compute_bound_spa(self):
        pipeline = SensorComputeControl(60.0, 1.1)
        assert pipeline.action_throughput_hz == pytest.approx(1.1)
        assert pipeline.bottleneck_stage == "compute"

    def test_default_control_rate(self):
        pipeline = SensorComputeControl(60.0, 100.0)
        assert pipeline.f_control_hz == 1000.0

    def test_latencies_order(self):
        pipeline = SensorComputeControl(10.0, 100.0, 1000.0)
        assert pipeline.stage_latencies_s == pytest.approx(
            (0.1, 0.01, 0.001)
        )

    def test_with_compute_copies(self):
        pipeline = SensorComputeControl(60.0, 10.0)
        faster = pipeline.with_compute(100.0)
        assert faster.f_compute_hz == 100.0
        assert pipeline.f_compute_hz == 10.0  # original untouched

    def test_with_sensor_copies(self):
        pipeline = SensorComputeControl(60.0, 10.0)
        faster = pipeline.with_sensor(120.0)
        assert faster.f_sensor_hz == 120.0

    def test_speedup_needed_when_already_fast(self):
        pipeline = SensorComputeControl(60.0, 178.0)
        assert pipeline.speedup_needed(43.0) == 1.0

    def test_speedup_needed_compute_bound(self):
        pipeline = SensorComputeControl(60.0, 1.1)
        assert pipeline.speedup_needed(43.0) == pytest.approx(43.0 / 1.1)

    def test_speedup_impossible_when_sensor_capped(self):
        # Sensor at 30 Hz can never reach a 43 Hz target.
        pipeline = SensorComputeControl(30.0, 1.1)
        assert pipeline.speedup_needed(43.0) == math.inf

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorComputeControl(0.0, 1.0)

    @given(fs=RATE, fc=RATE, fctl=RATE)
    def test_throughput_never_exceeds_any_stage(self, fs, fc, fctl):
        pipeline = SensorComputeControl(fs, fc, fctl)
        throughput = pipeline.action_throughput_hz
        assert throughput <= fs and throughput <= fc and throughput <= fctl

    @given(fs=RATE, fc=RATE, fctl=RATE)
    def test_latency_bounds_bracket_period(self, fs, fc, fctl):
        pipeline = SensorComputeControl(fs, fc, fctl)
        lower, upper = pipeline.latency_bounds_s
        # Eq. 1: the action period equals the slowest stage latency.
        assert pipeline.action_period_s == pytest.approx(lower)
        assert lower <= upper
