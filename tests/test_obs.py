"""Tests for repro.obs — tracing, metrics, progress, exporters."""

from __future__ import annotations

import io
import json
import threading
from time import perf_counter

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.obs import (
    Progress,
    ProgressPrinter,
    Tracer,
    chrome_trace,
    maybe_span,
    metrics_report,
    read_trace_jsonl,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.tracer import _NULL_SPAN


class TestTracerSpans:
    def test_span_records_name_timing_and_attributes(self):
        tracer = Tracer()
        with tracer.span("phase", rows=10) as span:
            span.set(selected=3)
        (record,) = tracer.spans
        assert record.name == "phase"
        assert record.tid == 0
        assert record.duration_s >= 0.0
        assert record.start_s >= 0.0
        assert record.attributes == {"rows": 10, "selected": 3}
        assert record.end_s == record.start_s + record.duration_s

    def test_spans_nest_by_time_containment(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # completion order: inner first
        assert inner.name == "inner"
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s

    def test_record_clock_is_epoch_relative_and_clamped(self):
        tracer = Tracer()
        start = perf_counter()
        record = tracer.record_clock("x", start, start + 0.5)
        assert record.duration_s == pytest.approx(0.5)
        # A clock predating the epoch clamps to zero, never negative.
        early = tracer.record_clock("y", tracer.epoch - 10.0, tracer.epoch)
        assert early.start_s == 0.0

    def test_span_names_are_sorted_and_distinct(self):
        tracer = Tracer()
        for name in ("b", "a", "b"):
            with tracer.span(name):
                pass
        assert tracer.span_names() == ("a", "b")

    def test_span_still_records_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(SimulationError):
            with tracer.span("doomed"):
                raise SimulationError("boom")
        assert tracer.span_names() == ("doomed",)

    def test_concurrent_spans_all_recorded(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def work(i: int) -> None:
            barrier.wait()
            for _ in range(50):
                with tracer.span(f"t{i}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans) == 200


class TestMaybeSpan:
    def test_none_tracer_yields_shared_null_span(self):
        span = maybe_span(None, "anything", rows=1)
        assert span is _NULL_SPAN
        with span as inner:
            assert inner.set(more=2) is inner  # chainable, stateless

    def test_real_tracer_records(self):
        tracer = Tracer()
        with maybe_span(tracer, "real", rows=5):
            pass
        assert tracer.span_names() == ("real",)


class TestMetrics:
    def test_counters_accumulate_and_snapshot(self):
        tracer = Tracer()
        tracer.counter("rows").add(3)
        tracer.counter("rows").add()
        assert tracer.counter("rows").value == 4
        assert tracer.counters_snapshot() == {"rows": 4}

    def test_gauge_holds_latest(self):
        tracer = Tracer()
        tracer.gauge("rate").set(10.0)
        tracer.gauge("rate").set(2.5)
        assert tracer.gauges_snapshot() == {"rate": 2.5}

    def test_merge_counters_folds_worker_snapshots(self):
        tracer = Tracer()
        tracer.counter("cache.hits").add(1)
        tracer.merge_counters({"cache.hits": 2, "cache.misses": 5})
        snapshot = tracer.counters_snapshot()
        assert snapshot == {"cache.hits": 3, "cache.misses": 5}

    def test_counter_thread_safety(self):
        tracer = Tracer()
        counter = tracer.counter("n")
        barrier = threading.Barrier(8)

        def bump() -> None:
            barrier.wait()
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestAbsorb:
    def test_rebases_worker_events_onto_parent_timeline(self):
        worker = Tracer()
        with worker.span("shard.evaluate", rows=7):
            pass
        parent = Tracer()
        anchor = perf_counter()
        parent.absorb(worker.to_events(), tid=3, end_clock=anchor, shard=2)
        (span,) = parent.spans
        assert span.tid == 3
        assert span.name == "shard.evaluate"
        assert span.attributes["rows"] == 7
        assert span.attributes["shard"] == 2
        # The latest absorbed event ends exactly at the anchor.
        assert span.end_s == pytest.approx(anchor - parent.epoch, abs=1e-6)

    def test_relative_structure_preserved(self):
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent = Tracer()
        parent.absorb(worker.to_events(), tid=1)
        inner, outer = parent.spans
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s + 1e-9

    def test_empty_events_are_a_no_op(self):
        parent = Tracer()
        parent.absorb([], tid=1)
        assert parent.spans == ()


class TestTelemetryDocument:
    def test_to_telemetry_shape(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        tracer.counter("rows").add(2)
        tracer.gauge("rate").set(1.5)
        doc = tracer.to_telemetry()
        assert doc["version"] == 1
        assert len(doc["events"]) == 1
        assert doc["counters"] == {"rows": 2}
        assert doc["gauges"] == {"rate": 1.5}
        json.dumps(doc)  # JSON-compatible throughout


class TestJsonlExport:
    def _traced(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("a", rows=4):
            pass
        with tracer.span("b", tid=2):
            pass
        tracer.counter("rows").add(4)
        tracer.gauge("rate").set(8.0)
        return tracer

    def test_roundtrip(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, tracer)
        spans, metrics = read_trace_jsonl(path)
        assert [s.name for s in spans] == ["a", "b"]
        assert spans[0].attributes == {"rows": 4}
        assert spans[1].tid == 2
        assert metrics["counters"] == {"rows": 4}
        assert metrics["gauges"] == {"rate": 8.0}

    def test_header_is_first_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, self._traced())
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "trace"
        assert header["version"] == 1

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            read_trace_jsonl(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "a", "start_us": 0, "dur_us": 1}\n')
        with pytest.raises(ConfigurationError, match="header"):
            read_trace_jsonl(path)

    def test_version_pinned(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "trace", "version": 99}\n')
        with pytest.raises(ConfigurationError, match="version"):
            read_trace_jsonl(path)

    def test_malformed_line_named(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"kind": "trace", "version": 1}\n{"name": "a", tor\n'
        )
        with pytest.raises(ConfigurationError, match="line 2"):
            read_trace_jsonl(path)


class TestChromeTrace:
    def test_structure_and_units(self):
        tracer = Tracer()
        start = tracer.epoch
        tracer.record_clock("phase", start + 0.001, start + 0.003, rows=2)
        tracer.record_clock("w", start + 0.002, start + 0.004, tid=2)
        tracer.counter("rows").add(2)
        doc = chrome_trace(tracer)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["counters"] == {"rows": 2}
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {(m["tid"], m["args"]["name"]) for m in meta} == {
            (0, "driver"),
            (2, "shard 1"),
        }
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        phase = next(e for e in complete if e["name"] == "phase")
        assert phase["ts"] == 1000  # microseconds
        assert phase["dur"] == 2000
        assert phase["args"] == {"rows": 2}

    def test_write_is_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer)
        doc = json.loads(path.read_text())
        assert any(e["name"] == "x" for e in doc["traceEvents"])


class TestMetricsReport:
    def test_aggregates_per_span_name(self):
        tracer = Tracer()
        start = tracer.epoch
        tracer.record_clock("phase", start, start + 0.010)
        tracer.record_clock("phase", start, start + 0.030)
        tracer.counter("rows").add(5)
        tracer.gauge("rate").set(1.25)
        report = metrics_report(tracer)
        assert "phase" in report
        assert "rows" in report and "counter" in report
        assert "rate" in report and "gauge" in report
        # phase row: count 2, total 40 ms, mean 20 ms, max 30 ms.
        phase_line = next(
            line for line in report.splitlines() if "phase" in line
        )
        assert " 2 " in phase_line
        assert "40.000" in phase_line
        assert "20.000" in phase_line
        assert "30.000" in phase_line

    def test_empty_tracer_reports_nothing_recorded(self):
        assert metrics_report(Tracer()) == "(no spans or metrics recorded)"


class TestProgress:
    def test_derived_quantities(self):
        p = Progress(
            done=2, total=4, rows_done=50, rows_total=100, elapsed_s=5.0
        )
        assert p.fraction == 0.5
        assert p.rows_per_s == 10.0
        assert p.eta_s == pytest.approx(5.0)

    def test_no_signal_yet(self):
        p = Progress(
            done=0, total=4, rows_done=0, rows_total=100, elapsed_s=0.0
        )
        assert p.rows_per_s == 0.0
        assert p.eta_s is None
        assert "eta --" in p.describe()

    def test_empty_grid_has_zero_fraction(self):
        p = Progress(
            done=0, total=0, rows_done=0, rows_total=0, elapsed_s=1.0
        )
        assert p.fraction == 0.0

    def test_describe_and_to_dict(self):
        p = Progress(
            done=3, total=16, rows_done=300, rows_total=1600, elapsed_s=2.0
        )
        line = p.describe()
        assert "shards 3/16" in line
        assert "rows 300/1600" in line
        assert "150 rows/s" in line
        d = p.to_dict()
        assert d["rows_per_s"] == 150.0
        json.dumps(d)


class TestProgressPrinter:
    def _snapshot(self, done: int, elapsed: float) -> Progress:
        return Progress(
            done=done,
            total=4,
            rows_done=done * 10,
            rows_total=40,
            elapsed_s=elapsed,
        )

    def test_prints_labelled_lines(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, label="study")
        printer(self._snapshot(1, 1.0))
        printer(self._snapshot(2, 2.0))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("study: shards 1/4")

    def test_throttles_but_always_prints_final(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, min_interval_s=10.0)
        printer(self._snapshot(1, 0.1))
        printer(self._snapshot(2, 0.2))  # throttled
        printer(self._snapshot(3, 0.3))  # throttled
        printer(self._snapshot(4, 0.4))  # final: always printed
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "shards 4/4" in lines[-1]

    def test_defaults_to_stderr(self, capsys):
        printer = ProgressPrinter()
        printer(self._snapshot(4, 1.0))
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "shards 4/4" in captured.err

    def test_drops_out_of_order_snapshots(self):
        # A parallel executor can deliver shard 2's callback after
        # shard 3's; the printed sequence must stay monotone in rows.
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(self._snapshot(3, 0.3))
        printer(self._snapshot(2, 0.4))  # stale: fewer rows done
        printer(self._snapshot(4, 0.5))  # final
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "shards 3/4" in lines[0]
        assert "shards 4/4" in lines[1]


class _ChunkRecordingStream(io.StringIO):
    """Records every raw ``write`` chunk (the tearing witness)."""

    def __init__(self) -> None:
        super().__init__()
        self.chunks: list[str] = []

    def write(self, text: str) -> int:
        self.chunks.append(text)
        return super().write(text)


class TestProgressPrinterThreadSafety:
    """The serving layer drives one printer from many worker threads;
    updates must land atomically, throttled, and monotone."""

    def _snapshot(self, done: int, elapsed: float) -> Progress:
        return Progress(
            done=done,
            total=1000,
            rows_done=done,
            rows_total=1000,
            elapsed_s=elapsed,
        )

    def test_each_update_is_a_single_write(self):
        # The atomicity contract concurrent writers rely on: one
        # update == one stream.write of one whole line.  (The old
        # print()-based implementation wrote text and newline as two
        # chunks, so two threads could interleave mid-line.)
        stream = _ChunkRecordingStream()
        printer = ProgressPrinter(stream=stream)
        printer(self._snapshot(1, 1.0))
        printer(self._snapshot(2, 2.0))
        assert len(stream.chunks) == 2
        for chunk in stream.chunks:
            assert chunk.endswith("\n")
            assert chunk.count("\n") == 1

    def test_concurrent_updates_never_tear_lines(self):
        stream = _ChunkRecordingStream()
        printer = ProgressPrinter(stream=stream, label="svc")
        barrier = threading.Barrier(8)

        def work(thread_index: int) -> None:
            barrier.wait()
            for step in range(50):
                printer(self._snapshot(thread_index * 50 + step, 1.0))

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every chunk is one complete line; nothing interleaved.
        assert stream.chunks
        for chunk in stream.chunks:
            assert chunk.startswith("svc: shards ")
            assert chunk.endswith("\n")
            assert chunk.count("\n") == 1
        # And the printed row counts are monotone non-decreasing.
        rows = [
            int(chunk.split("shards ")[1].split("/")[0])
            for chunk in stream.chunks
        ]
        assert rows == sorted(rows)

    def test_throttle_is_atomic_under_concurrency(self):
        # All 8 threads deliver at the same elapsed time; the
        # check-then-set throttle must admit exactly one line (the
        # unlocked version let every thread observe 'no line yet').
        stream = _ChunkRecordingStream()
        printer = ProgressPrinter(stream=stream, min_interval_s=60.0)
        barrier = threading.Barrier(8)

        def work() -> None:
            barrier.wait()
            printer(self._snapshot(1, 0.0))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(stream.chunks) == 1
