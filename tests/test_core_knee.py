"""Tests for knee-point strategies."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knee import (
    DEFAULT_KNEE_FRACTION,
    FractionOfRoofKnee,
    LinearIntersectionKnee,
    MaxCurvatureKnee,
)
from repro.core.safety import physics_roof, safe_velocity_at_rate
from repro.errors import ConfigurationError

D = st.floats(min_value=0.5, max_value=50.0)
A = st.floats(min_value=0.1, max_value=60.0)


class TestFractionOfRoof:
    def test_fig5_knee_near_100hz(self):
        knee = FractionOfRoofKnee().locate(10.0, 50.0)
        assert knee.throughput_hz == pytest.approx(98.0, abs=0.5)
        assert knee.velocity == pytest.approx(
            DEFAULT_KNEE_FRACTION * physics_roof(10.0, 50.0)
        )

    def test_pelican_case_b_knee(self):
        # Calibrated Pelican+TX2 parameters -> the paper's 43 Hz.
        knee = FractionOfRoofKnee().locate(3.0, 2.891)
        assert knee.throughput_hz == pytest.approx(43.0, abs=0.2)

    def test_closed_form_consistency(self):
        # The knee's velocity must satisfy Eq. 4 at its throughput.
        knee = FractionOfRoofKnee(0.95).locate(4.0, 2.0)
        assert safe_velocity_at_rate(
            knee.throughput_hz, 4.0, 2.0
        ) == pytest.approx(knee.velocity, rel=1e-9)

    @given(d=D, a=A,
           rho=st.floats(min_value=0.5, max_value=0.999))
    @settings(max_examples=150)
    def test_velocity_fraction_exact(self, d, a, rho):
        knee = FractionOfRoofKnee(rho).locate(d, a)
        assert knee.velocity / physics_roof(d, a) == pytest.approx(rho)
        # And the curve really passes through the knee.
        assert safe_velocity_at_rate(knee.throughput_hz, d, a) == (
            pytest.approx(knee.velocity, rel=1e-9)
        )

    @given(d=D, a=A)
    def test_knee_scales_sqrt_a_over_d(self, d, a):
        knee = FractionOfRoofKnee().locate(d, a)
        knee4 = FractionOfRoofKnee().locate(d, 4.0 * a)
        assert knee4.throughput_hz == pytest.approx(
            2.0 * knee.throughput_hz, rel=1e-9
        )

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            FractionOfRoofKnee(1.0)
        with pytest.raises(ConfigurationError):
            FractionOfRoofKnee(0.0)


class TestLinearIntersection:
    def test_formula(self):
        knee = LinearIntersectionKnee().locate(10.0, 50.0)
        assert knee.throughput_hz == pytest.approx(math.sqrt(10.0))

    @given(d=D, a=A)
    def test_always_left_of_default_knee(self, d, a):
        linear = LinearIntersectionKnee().locate(d, a)
        fraction = FractionOfRoofKnee().locate(d, a)
        assert linear.throughput_hz < fraction.throughput_hz


class TestMaxCurvature:
    def test_locates_in_transition_region(self):
        knee = MaxCurvatureKnee().locate(10.0, 50.0)
        # Must land between the linear intersection and the flat roof.
        linear = LinearIntersectionKnee().locate(10.0, 50.0)
        assert linear.throughput_hz / 10 < knee.throughput_hz < 1000.0
        assert 0.3 < knee.fraction_of_roof < 1.0

    def test_curve_value_consistent(self):
        knee = MaxCurvatureKnee().locate(3.0, 2.891)
        assert safe_velocity_at_rate(
            knee.throughput_hz, 3.0, 2.891
        ) == pytest.approx(knee.velocity, rel=1e-6)

    def test_rejects_tiny_sample_count(self):
        with pytest.raises(ConfigurationError):
            MaxCurvatureKnee(samples=4)

    @given(d=D, a=A)
    @settings(max_examples=25, deadline=None)
    def test_scale_invariance_of_fraction(self, d, a):
        # Curvature knee is defined on normalized axes, so its fraction
        # of the roof should be scale-free (same for all d, a).
        reference = MaxCurvatureKnee().locate(10.0, 50.0)
        knee = MaxCurvatureKnee().locate(d, a)
        assert knee.fraction_of_roof == pytest.approx(
            reference.fraction_of_roof, abs=0.02
        )
