"""Tests for the discrete-event pipeline simulator (Eq. 1-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.pipeline.analysis import verify_bottleneck_law
from repro.pipeline.des import DiscreteEventSimulator
from repro.pipeline.jitter import GaussianJitter, NoJitter, UniformJitter
from repro.pipeline.pipeline_sim import simulate_pipeline


class TestDES:
    def test_events_fire_in_time_order(self):
        sim = DiscreteEventSimulator()
        seen = []
        sim.schedule(0.3, lambda: seen.append("c"))
        sim.schedule(0.1, lambda: seen.append("a"))
        sim.schedule(0.2, lambda: seen.append("b"))
        sim.run_until(1.0)
        assert seen == ["a", "b", "c"]
        assert sim.now == 1.0

    def test_ties_fire_in_schedule_order(self):
        sim = DiscreteEventSimulator()
        seen = []
        sim.schedule(0.1, lambda: seen.append(1))
        sim.schedule(0.1, lambda: seen.append(2))
        sim.run_until(1.0)
        assert seen == [1, 2]

    def test_periodic_callback(self):
        sim = DiscreteEventSimulator()
        ticks = []
        sim.every(0.1, lambda: ticks.append(sim.now))
        sim.run_until(1.0)
        assert len(ticks) == 11  # t = 0.0 .. 1.0
        assert ticks[1] == pytest.approx(0.1)

    def test_events_beyond_horizon_stay_queued(self):
        sim = DiscreteEventSimulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until(1.0)
        assert sim.pending_events() == 1

    def test_negative_delay_rejected(self):
        sim = DiscreteEventSimulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_backwards_run_rejected(self):
        sim = DiscreteEventSimulator()
        sim.run_until(1.0)
        with pytest.raises(SimulationError):
            sim.run_until(0.5)

    @pytest.mark.parametrize("factor", [0.0, -0.5])
    def test_nonpositive_jitter_factor_raises_instead_of_livelock(
        self, factor
    ):
        # Regression: a zero factor self-rescheduled at the current
        # instant forever — run_until never returned.  The guarded
        # callback bounds the damage if the guard regresses.
        sim = DiscreteEventSimulator()
        calls = []

        def callback() -> None:
            calls.append(sim.now)
            assert len(calls) < 10_000, "livelocked: clock never advanced"

        sim.every(0.5, callback, jitter=lambda: factor)
        with pytest.raises(SimulationError, match="0.5 s period"):
            sim.run_until(2.0)
        assert len(calls) == 1  # the offending cycle fired exactly once


class TestJitter:
    def test_no_jitter_is_identity(self):
        rng = np.random.default_rng(0)
        assert NoJitter().sample(rng) == 1.0

    def test_uniform_jitter_clamped_positive(self):
        # Regression: wide uniform windows could draw factors
        # arbitrarily close to zero (no _MIN_FACTOR clamp), stalling
        # the DES clock.
        from repro.pipeline.jitter import _MIN_FACTOR

        class NearZeroRng:
            def uniform(self, low, high):
                return low

        factor = UniformJitter(half_width=0.999999).sample(NearZeroRng())
        assert factor >= _MIN_FACTOR

    def test_uniform_jitter_bounds(self):
        rng = np.random.default_rng(0)
        model = UniformJitter(half_width=0.2)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(0.8 <= s <= 1.2 for s in samples)

    def test_gaussian_jitter_clamped_positive(self):
        rng = np.random.default_rng(0)
        model = GaussianJitter(sigma=2.0)  # absurd sigma to force clamps
        samples = [model.sample(rng) for _ in range(500)]
        assert all(s > 0 for s in samples)

    def test_uniform_width_validated(self):
        with pytest.raises(ConfigurationError):
            UniformJitter(half_width=1.0)


class TestPipelineSim:
    def test_compute_bound_throughput(self):
        stats = simulate_pipeline(60.0, 10.0, 1000.0, duration_s=20.0)
        assert stats.action_throughput_hz == pytest.approx(10.0, rel=0.05)

    def test_sensor_bound_throughput(self):
        stats = simulate_pipeline(30.0, 178.0, 1000.0, duration_s=20.0)
        assert stats.action_throughput_hz == pytest.approx(30.0, rel=0.05)

    def test_sensor_bound_drops_no_frames(self):
        stats = simulate_pipeline(30.0, 178.0, 1000.0, duration_s=20.0)
        assert stats.drop_fraction < 0.01

    def test_compute_bound_drops_stale_frames(self):
        stats = simulate_pipeline(60.0, 10.0, 1000.0, duration_s=20.0)
        # ~5 of every 6 frames are superseded before compute frees up.
        assert stats.drop_fraction == pytest.approx(5 / 6, abs=0.05)

    def test_sequential_mode_matches_eq2(self):
        check = verify_bottleneck_law(60.0, 10.0, 1000.0, duration_s=30.0)
        assert check.sequential_error < 0.05
        assert check.sequential.action_throughput_hz == pytest.approx(
            check.sequential_throughput_hz, rel=0.05
        )

    def test_overlapped_mode_matches_eq3(self):
        check = verify_bottleneck_law(60.0, 10.0, 1000.0, duration_s=30.0)
        assert check.overlapped_error < 0.05

    def test_latency_within_analytic_bounds(self):
        check = verify_bottleneck_law(60.0, 10.0, 1000.0, duration_s=30.0)
        lower, upper = check.analytic_latency_bounds_s
        # Overlapped: at least the slowest stage; at most sum + one
        # sensor period of queueing slack.
        assert check.overlapped.mean_latency_s >= lower * 0.99
        assert check.overlapped.mean_latency_s <= upper + 1.0 / 60.0
        # Sequential: the mean latency is the sum of stage latencies.
        assert check.sequential.mean_latency_s == pytest.approx(
            upper, rel=0.05
        )

    def test_jitter_keeps_throughput_close(self):
        stats = simulate_pipeline(
            60.0, 10.0, 1000.0, duration_s=30.0,
            jitter=GaussianJitter(sigma=0.05), seed=3,
        )
        assert stats.action_throughput_hz == pytest.approx(10.0, rel=0.1)

    def test_deterministic_given_seed(self):
        a = simulate_pipeline(60.0, 10.0, 1000.0, duration_s=5.0,
                              jitter=UniformJitter(0.1), seed=11)
        b = simulate_pipeline(60.0, 10.0, 1000.0, duration_s=5.0,
                              jitter=UniformJitter(0.1), seed=11)
        assert a.action_throughput_hz == b.action_throughput_hz
        assert a.mean_latency_s == b.mean_latency_s

    def test_warmup_validation(self):
        with pytest.raises(SimulationError):
            simulate_pipeline(10.0, 10.0, 10.0, duration_s=1.0, warmup_s=2.0)

    @given(
        fs=st.floats(min_value=5.0, max_value=120.0),
        fc=st.floats(min_value=0.5, max_value=300.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_bottleneck_law_property(self, fs, fc):
        stats = simulate_pipeline(fs, fc, 1000.0, duration_s=25.0)
        analytic = min(fs, fc, 1000.0)
        assert stats.action_throughput_hz == pytest.approx(analytic, rel=0.1)
