"""Tests for repro.analysis: the reprolint engine and the RPL rules.

Every rule is exercised against fixture files under
``tests/data/reprolint_fixtures/`` (a clean and a violating variant),
suppression comments are covered at line, next-line and file scope,
and the end-to-end test asserts the shipped ``src/repro`` tree is
clean at HEAD — the CI contract.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import Analyzer, AnalyzerConfig, REGISTRY
from repro.analysis import cli, wire
from repro.analysis.rules import UNIT_DIMENSIONS, unit_dimension
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "data" / "reprolint_fixtures"
REPO_ROOT = Path(__file__).parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
SNAPSHOT = REPO_ROOT / "tests" / "data" / "wire_fingerprints.json"


def run_fixture(name: str, **config) -> list:
    analyzer = Analyzer(AnalyzerConfig(**config)) if config else Analyzer()
    return analyzer.check_file(FIXTURES / name)


class TestRegistry:
    def test_all_nine_rules_registered(self):
        assert sorted(REGISTRY) == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL008",
            "RPL009",
        ]

    def test_every_rule_documents_itself(self):
        for cls in REGISTRY.values():
            assert cls.name
            assert len(cls.rationale) > 40

    def test_unknown_select_rejected(self):
        with pytest.raises(ConfigurationError, match="select"):
            Analyzer(AnalyzerConfig(select=("RPL999",)))

    def test_select_runs_subset(self):
        analyzer = Analyzer(AnalyzerConfig(select=("RPL002",)))
        assert [r.id for r in analyzer.rules] == ["RPL002"]


class TestRPL001Units:
    def test_clean_fixture(self):
        assert run_fixture("rpl001_clean.py") == []

    def test_violations(self):
        findings = run_fixture("rpl001_violations.py")
        assert [f.rule for f in findings] == ["RPL001"] * 5
        messages = "\n".join(f.message for f in findings)
        assert "mass ('mass_g') with power ('power_w')" in messages
        assert "length ('range_m') with time ('time_s')" in messages
        assert "comparison mixes rate" in messages
        assert "assignment mixes mass" in messages

    def test_trailing_suppression_respected(self):
        findings = run_fixture("rpl001_violations.py")
        # suppressed_mix's line carries a disable comment: not reported.
        assert all("suppressed" not in f.message for f in findings)
        lines = (FIXTURES / "rpl001_violations.py").read_text().splitlines()
        suppressed_line = next(
            i for i, line in enumerate(lines, 1) if "disable=RPL001" in line
        )
        assert all(f.line != suppressed_line for f in findings)

    def test_dimension_table_matches_units_converters(self):
        """UNIT_DIMENSIONS agrees with the repro.units conversion table.

        Every single-argument ``a_to_b`` converter in units.py converts
        *within* one dimension group (grams→kg, ms→s, deg→rad, ...);
        multi-argument converters (mah_to_wh needs a voltage) cross
        groups by design and are exempt.
        """
        word_to_suffix = {
            "grams": "g",
            "kg": "kg",
            "ms": "ms",
            "s": "s",
            "deg": "deg",
            "rad": "rad",
            "wh": "wh",
            "joules": "j",
            "mah": "mah",
            "hz": "hz",
        }
        units_source = (SRC_REPRO / "units.py").read_text()
        tree = ast.parse(units_source)
        checked = 0
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef) or "_to_" not in node.name:
                continue
            if len(node.args.args) != 1:
                continue  # cross-dimension by design (needs a second arg)
            left, _, right = node.name.partition("_to_")
            left_suffix = word_to_suffix.get(left)
            right_suffix = word_to_suffix.get(right)
            if left_suffix is None or right_suffix is None:
                continue  # e.g. hz_to_period: "period" is not a suffix
            assert (
                UNIT_DIMENSIONS[left_suffix] == UNIT_DIMENSIONS[right_suffix]
            ), f"converter {node.name} crosses dimension groups"
            checked += 1
        assert checked >= 4  # grams↔kg, ms→s, deg↔rad, wh→joules

    def test_unit_dimension_helper(self):
        assert unit_dimension("total_mass_g") == "mass"
        assert unit_dimension("f_compute_hz") == "rate"
        assert unit_dimension("nosuffix") is None
        assert unit_dimension("weird_zzz") is None


class TestRPL002Errors:
    def test_clean_fixture(self):
        assert run_fixture("rpl002_clean.py") == []

    def test_violations(self):
        findings = run_fixture("rpl002_violations.py")
        assert [f.rule for f in findings] == ["RPL002"] * 4
        named = {f.message.split(";")[0] for f in findings}
        assert named == {
            "raises bare ValueError",
            "raises bare TypeError",
            "raises bare RuntimeError",
            "raises bare Exception",
        }

    def test_preceding_line_suppression(self):
        # The suppressed() raise sits under a standalone disable comment.
        findings = run_fixture("rpl002_violations.py")
        assert all("tolerated" not in f.message for f in findings)

    def test_file_level_suppression(self):
        assert run_fixture("suppression_file.py") == []


class TestRPL003WireGuard:
    def _snapshot_for(self, fixture: str, tmp_path: Path) -> Path:
        source = (FIXTURES / fixture).read_text()
        snapshot = {
            "version": wire.SNAPSHOT_VERSION,
            "builders": wire.ast_snapshot_of_source(source),
            "shapes": {},
        }
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(snapshot))
        return path

    def _config(self, module: str, snapshot: Path) -> AnalyzerConfig:
        return AnalyzerConfig(
            wire_modules=(module,), wire_snapshot=snapshot
        )

    def test_unchanged_builder_is_clean(self, tmp_path):
        snap = self._snapshot_for("rpl003_serialization.py", tmp_path)
        config = self._config("rpl003_serialization.py", snap)
        assert run_fixture("rpl003_serialization.py", **vars(config)) == []

    def test_drift_without_bump_flagged(self, tmp_path):
        snap = self._snapshot_for("rpl003_serialization.py", tmp_path)
        config = self._config("rpl003_drifted.py", snap)
        findings = run_fixture("rpl003_drifted.py", **vars(config))
        assert len(findings) == 1
        assert findings[0].rule == "RPL003"
        assert "MANIFEST_VERSION is still 1" in findings[0].message
        assert "bump the version" in findings[0].message

    def test_bump_with_stale_snapshot_flagged(self, tmp_path):
        snap = self._snapshot_for("rpl003_serialization.py", tmp_path)
        config = self._config("rpl003_bumped.py", snap)
        findings = run_fixture("rpl003_bumped.py", **vars(config))
        assert len(findings) == 1
        assert "bumped to 2" in findings[0].message
        assert "--update-wire-snapshot" in findings[0].message

    def test_removed_builder_flagged(self, tmp_path):
        snap = self._snapshot_for("rpl003_serialization.py", tmp_path)
        config = self._config("rpl002_clean.py", snap)
        findings = run_fixture("rpl002_clean.py", **vars(config))
        assert len(findings) == 1
        assert "missing from this module" in findings[0].message

    def test_docstring_edit_does_not_move_fingerprint(self):
        source = (FIXTURES / "rpl003_serialization.py").read_text()
        reworded = source.replace(
            "fixture twin of the real builder", "same builder, new prose"
        )
        assert reworded != source
        assert wire.ast_snapshot_of_source(
            source
        ) == wire.ast_snapshot_of_source(reworded)

    def test_committed_snapshot_is_fresh(self):
        """The committed snapshot matches the live serialization module.

        Failing here means io/serialization.py changed: bump the
        affected ``*_VERSION`` constant if the wire shape moved, then
        run ``reprolint --update-wire-snapshot`` and commit the result.
        """
        committed = wire.load_snapshot(SNAPSHOT)
        live = wire.ast_snapshot_of_source(
            (SRC_REPRO / "io" / "serialization.py").read_text()
        )
        assert committed["builders"] == live

    def test_malformed_snapshot_rejected(self, tmp_path):
        bad = tmp_path / "snap.json"
        bad.write_text('{"version": 99}')
        with pytest.raises(ConfigurationError, match="version"):
            wire.load_snapshot(bad)


class TestRPL004Purity:
    CONFIG = {"purity_modules": ("rpl004_violations.py",)}

    def test_violations(self):
        findings = run_fixture("rpl004_violations.py", **self.CONFIG)
        assert [f.rule for f in findings] == ["RPL004"] * 4
        messages = "\n".join(f.message for f in findings)
        assert "statement-level loop" in messages
        assert "writes into parameter 'out'" in messages
        assert "in-place sort() on parameter 'column'" in messages

    def test_out_of_scope_module_ignored(self):
        # Without the module in purity scope, the same file is clean.
        assert run_fixture("rpl004_violations.py") == []

    def test_shipped_hot_paths_use_one_justified_suppression(self):
        # assembly.py carries exactly one per-column loop, explicitly
        # suppressed with a justification; kernels.py needs none.
        assembly = (SRC_REPRO / "batch" / "assembly.py").read_text()
        assert assembly.count("reprolint: disable=RPL004") == 1
        kernels = (SRC_REPRO / "batch" / "kernels.py").read_text()
        assert "reprolint" not in kernels


class TestRPL005Tracer:
    def test_fixture_findings(self):
        findings = run_fixture("rpl005_violations.py")
        assert [f.rule for f in findings] == ["RPL005"] * 3
        source_lines = (
            (FIXTURES / "rpl005_violations.py").read_text().splitlines()
        )
        flagged = {source_lines[f.line - 1].strip() for f in findings}
        assert flagged == {
            'tracer.counter("rows").add(len(matrix))  # crashes untraced runs',
            'tracer.counter("rows").add(1)  # tracer IS None here',
            'tracer.span("compile")  # may still be None',
        }

    def test_guarded_idioms_accepted(self):
        findings = run_fixture("rpl005_violations.py")
        clean_functions = ("guarded", "early_return")
        source = (FIXTURES / "rpl005_violations.py").read_text()
        lines = source.splitlines()
        for name in clean_functions:
            start = next(
                i for i, l in enumerate(lines, 1) if f"def {name}(" in l
            )
            end = start + next(
                (
                    j
                    for j, l in enumerate(lines[start:], 1)
                    if l.startswith("def ")
                ),
                len(lines) - start,
            )
            assert not [f for f in findings if start <= f.line < end], name


class TestRPL006Picklability:
    def test_violations(self):
        findings = run_fixture("rpl006_violations.py")
        assert [f.rule for f in findings] == ["RPL006"] * 3
        messages = "\n".join(f.message for f in findings)
        assert "lambda passed to .submit()" in messages
        assert "nested function 'local_work'" in messages
        assert "lambda passed to .map()" in messages


class TestEngine:
    def test_missing_path_rejected(self):
        with pytest.raises(ConfigurationError, match="does not exist"):
            Analyzer().check_paths(["/no/such/tree"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = Analyzer().check_file(bad)
        assert len(findings) == 1
        assert findings[0].rule == "RPL000"
        assert "syntax error" in findings[0].message

    def test_findings_sort_stably(self):
        findings = run_fixture("rpl002_violations.py")
        assert findings == sorted(findings)

    def test_finding_format_is_clickable(self):
        finding = run_fixture("rpl002_violations.py")[0]
        path, line, col, rest = finding.format().split(":", 3)
        assert path.endswith("rpl002_violations.py")
        assert int(line) > 0 and int(col) > 0
        assert rest.strip().startswith("RPL002")


class TestEndToEnd:
    def test_src_repro_is_clean_at_head(self):
        """The acceptance criterion: all nine rules pass on the tree."""
        analyzer = Analyzer()
        findings = analyzer.check_paths([SRC_REPRO])
        assert findings == [], "\n".join(f.format() for f in findings)
        assert len(analyzer.rules) == 9

    def test_cli_exit_codes(self, capsys):
        assert cli.main([str(FIXTURES / "rpl001_clean.py")]) == 0
        assert cli.main([str(FIXTURES / "rpl002_violations.py")]) == 1
        capsys.readouterr()

    def test_cli_json_report(self, capsys):
        exit_code = cli.main(
            ["--json", str(FIXTURES / "rpl002_violations.py")]
        )
        report = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert report["version"] == 1
        assert report["files_checked"] == 1
        assert {f["rule"] for f in report["findings"]} == {"RPL002"}
        assert set(report["rules"]) == set(REGISTRY)

    def test_cli_select(self, capsys):
        exit_code = cli.main(
            [
                "--select",
                "RPL001",
                str(FIXTURES / "rpl002_violations.py"),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0  # RPL002 findings not selected

    def test_cli_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in REGISTRY:
            assert rule_id in out

    def test_cli_unknown_rule_is_usage_error(self, capsys):
        exit_code = cli.main(["--select", "RPL999", str(FIXTURES)])
        assert exit_code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_update_wire_snapshot_round_trips(self, tmp_path, capsys):
        target = tmp_path / "snap.json"
        exit_code = cli.main(
            ["--update-wire-snapshot", "--wire-snapshot", str(target)]
        )
        capsys.readouterr()
        assert exit_code == 0
        regenerated = wire.load_snapshot(target)
        committed = wire.load_snapshot(SNAPSHOT)
        assert regenerated == committed, (
            "committed wire snapshot is stale; run "
            "'reprolint --update-wire-snapshot' and commit the result"
        )
