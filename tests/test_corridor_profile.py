"""Tests for corridor navigation and host SPA profiling."""

from __future__ import annotations

import math

import pytest

from repro.autonomy.spa_profile import profile_spa_stages
from repro.errors import ConfigurationError
from repro.sim.corridor import CorridorWorld, navigate_corridor


@pytest.fixture(scope="module")
def world() -> CorridorWorld:
    return CorridorWorld(seed=3)


class TestCorridorWorld:
    def test_obstacles_inside_bounds(self, world):
        for obstacle in world.obstacles:
            assert 0 <= obstacle.x <= world.length_m
            assert 0 <= obstacle.y <= world.width_m

    def test_ray_hits_obstacle(self, world):
        obstacle = world.obstacles[0]
        angle = math.atan2(obstacle.y - 0.0, obstacle.x - 0.0)
        distance = world.ray_distance((0.0, 0.0), angle, max_range_m=100.0)
        assert distance is not None
        center_range = math.hypot(obstacle.x, obstacle.y)
        assert distance == pytest.approx(
            center_range - obstacle.radius, abs=1e-6
        )

    def test_ray_misses_open_space(self):
        empty = CorridorWorld(obstacle_count=0, seed=0)
        assert empty.ray_distance((1.0, 5.0), 0.0, 6.0) is None

    def test_scan_shapes(self, world):
        angles, ranges = world.scan((1.0, 5.0), beams=36)
        assert len(angles) == len(ranges) == 36

    def test_clearance_metric(self, world):
        obstacle = world.obstacles[0]
        at_surface = (obstacle.x + obstacle.radius, obstacle.y)
        assert world.distance_to_nearest(at_surface) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_deterministic_given_seed(self):
        a = CorridorWorld(seed=9)
        b = CorridorWorld(seed=9)
        assert [(o.x, o.y) for o in a.obstacles] == [
            (o.x, o.y) for o in b.obstacles
        ]


class TestNavigation:
    def test_slow_and_attentive_succeeds(self, world):
        result = navigate_corridor(world, velocity=1.0, f_action_hz=5.0)
        assert result.reached_goal and not result.collided
        assert result.min_clearance_m >= 0.25

    def test_fast_and_attentive_succeeds(self, world):
        result = navigate_corridor(world, velocity=6.0, f_action_hz=5.0)
        assert result.reached_goal and not result.collided

    def test_fast_and_inattentive_collides(self, world):
        result = navigate_corridor(world, velocity=6.0, f_action_hz=0.5)
        assert result.collided and not result.reached_goal

    def test_decision_rate_unlocks_velocity(self, world):
        # The behavioral analogue of the F-1 coupling: the same speed
        # that crashes at 0.5 Hz is fine at 5 Hz.
        slow_decisions = navigate_corridor(
            world, velocity=6.0, f_action_hz=0.5
        )
        fast_decisions = navigate_corridor(
            world, velocity=6.0, f_action_hz=5.0
        )
        assert slow_decisions.collided
        assert fast_decisions.reached_goal

    def test_faster_vehicle_arrives_sooner(self, world):
        slow = navigate_corridor(world, velocity=1.0, f_action_hz=5.0)
        fast = navigate_corridor(world, velocity=3.0, f_action_hz=5.0)
        assert fast.time_s < slow.time_s

    def test_replans_track_action_rate(self, world):
        low = navigate_corridor(world, velocity=1.0, f_action_hz=1.0)
        high = navigate_corridor(world, velocity=1.0, f_action_hz=5.0)
        assert high.replans > 3 * low.replans


class TestSPAProfile:
    def test_profile_structure(self):
        profile = profile_spa_stages(
            world_size_m=10.0, scan_beams=60, repeats=2
        )
        assert set(profile.stage_latency_s) == {
            "slam", "octomap", "planning", "control",
        }
        assert all(v > 0 for v in profile.stage_latency_s.values())
        assert profile.decision_rate_hz == pytest.approx(
            1.0 / profile.total_latency_s
        )

    def test_planning_dominates_like_mavbench(self):
        # The paper's TX2 characterization has planning as the largest
        # stage; our executable stack shows the same structure.
        profile = profile_spa_stages(
            world_size_m=20.0, scan_beams=120, repeats=2
        )
        latencies = profile.stage_latency_s
        assert latencies["planning"] > latencies["octomap"]
        assert latencies["planning"] > latencies["control"]

    def test_feeds_the_f1_model(self):
        # End-to-end: host-profiled SPA rate -> Skyline verdict.
        from repro.skyline import Skyline

        profile = profile_spa_stages(
            world_size_m=10.0, scan_beams=60, repeats=1
        )
        session = Skyline.from_preset(
            "asctec-pelican", sensor_range_m=3.0
        )
        report = session.evaluate_throughput(
            profile.decision_rate_hz, label="host-spa"
        )
        assert report.analysis.bound.value in ("compute", "physics")

    def test_repeats_validated(self):
        with pytest.raises(ConfigurationError):
            profile_spa_stages(repeats=0)
