"""Sharded executor suite: chunking, parallel fan-out, merges,
checkpoints, cache hygiene and the study CLI's scaling flags.

The load-bearing property throughout: every sharded/parallel path is
*bitwise* identical to the single-process ``evaluate_matrix`` /
``run_study`` it replaces (the kernels are elementwise, so chunk
boundaries cannot change a double).  Process-backed tests are kept
small and few — they exercise real worker processes, which are slow to
spawn on CI — while the property suites run on the serial backend.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchCache,
    DEFAULT_CACHE,
    CheckpointStore,
    DesignMatrix,
    ParallelExecutor,
    cartesian_product,
    cartesian_row_count,
    cartesian_slice,
    clear_default_cache,
    concat_results,
    default_chunk_rows,
    evaluate_matrix,
    evaluate_matrix_sharded,
    evaluate_spec_sharded,
    iter_chunks,
    merge_top_k,
    scenario_grid,
    shard_ranges,
    top_k_sharded,
)
from repro.batch.executor import DEFAULT_CHUNK_ROWS, _evaluate_shard, _init_worker
from repro.errors import ConfigurationError
from repro.io.serialization import (
    batch_results_equal,
    design_matrices_equal,
    shard_manifest_from_dict,
)
from repro.skyline.cli import main as cli_main
from repro.study import (
    DesignSpec,
    ScenarioSpec,
    StudySpec,
    compile_chunk,
    compile_spec,
    run_study,
    study_axes,
    study_size,
)
from repro.uav.registry import get_preset


def _grid(n_rows: int = 120) -> DesignMatrix:
    rng = np.random.default_rng(7)
    return DesignMatrix.from_arrays(
        sensing_range_m=rng.uniform(2.0, 20.0, n_rows),
        a_max=rng.uniform(5.0, 50.0, n_rows),
        f_sensor_hz=rng.uniform(15.0, 90.0, n_rows),
        f_compute_hz=rng.uniform(0.5, 500.0, n_rows),
        f_control_hz=rng.uniform(50.0, 400.0, n_rows),
    )


def _knob_spec(**kwargs) -> StudySpec:
    return StudySpec(
        design=DesignSpec.knob_axes(
            axes={
                "compute_tdp_w": (1.0, 10.0, 30.0),
                "compute_runtime_s": (0.01, 0.1, 0.4),
                "payload_weight_g": (0.0, 150.0),
            }
        ),
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Cartesian index arithmetic
# ---------------------------------------------------------------------------
class TestCartesianSlice:
    @given(
        sizes=st.lists(st.integers(1, 5), min_size=1, max_size=4),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_slices_match_full_product(self, sizes, data):
        axes = {
            f"axis{i}": np.linspace(1.0, 2.0 + i, n)
            for i, n in enumerate(sizes)
        }
        total = cartesian_row_count(axes)
        start = data.draw(st.integers(0, total))
        stop = data.draw(st.integers(start, total))
        full = cartesian_product(axes)
        part = cartesian_slice(axes, start, stop)
        for name in axes:
            np.testing.assert_array_equal(
                part[name], full[name][start:stop]
            )

    def test_chunks_reassemble_the_grid(self):
        axes = {"a": (1.0, 2.0, 3.0), "b": (4.0, 5.0), "c": (6.0, 7.0)}
        full = cartesian_product(axes)
        for chunk in (1, 2, 5, 12, 100):
            parts = [
                cartesian_slice(axes, start, stop)
                for start, stop in shard_ranges(
                    cartesian_row_count(axes), chunk
                )
            ]
            for name in axes:
                np.testing.assert_array_equal(
                    np.concatenate([p[name] for p in parts]), full[name]
                )

    def test_out_of_range_slice_is_an_error(self):
        axes = {"a": (1.0, 2.0)}
        with pytest.raises(ConfigurationError, match="out of range"):
            cartesian_slice(axes, 0, 3)
        with pytest.raises(ConfigurationError, match="out of range"):
            cartesian_slice(axes, -1, 1)

    def test_needs_at_least_one_axis(self):
        with pytest.raises(ConfigurationError, match="at least one axis"):
            cartesian_slice({}, 0, 0)
        with pytest.raises(ConfigurationError, match="at least one axis"):
            cartesian_row_count({})


class TestShardRanges:
    def test_covers_every_row_once(self):
        for total, chunk in ((10, 3), (10, 10), (10, 100), (1, 1), (7, 2)):
            ranges = shard_ranges(total, chunk)
            rows = [i for s, e in ranges for i in range(s, e)]
            assert rows == list(range(total))
            assert all(e - s <= chunk for s, e in ranges)

    def test_chunk_rows_validated(self):
        with pytest.raises(ConfigurationError, match="chunk_rows"):
            shard_ranges(10, 0)

    def test_default_chunk_rows_bounds(self):
        assert default_chunk_rows(10_000_000, 4) == DEFAULT_CHUNK_ROWS
        assert default_chunk_rows(100, 4) == 7  # ~4 shards per worker
        assert default_chunk_rows(1, 1) == 1


# ---------------------------------------------------------------------------
# Matrix chunking and merging
# ---------------------------------------------------------------------------
class TestMatrixChunks:
    def test_chunks_concat_back_bitwise(self):
        matrix = _grid(57)
        shards = list(iter_chunks(matrix, chunk_rows=13))
        assert [s.index for s in shards] == list(range(len(shards)))
        assert shards[-1].stop == len(matrix)
        rebuilt = DesignMatrix.concat(
            [
                DesignMatrix.from_arrays(
                    **s.task["columns"],
                    labels=s.task["labels"],
                    knee_fraction=s.task["matrix_knee_fraction"],
                )
                for s in shards
            ]
        )
        assert design_matrices_equal(matrix, rebuilt)

    def test_concat_rejects_mixed_labels_and_knees(self):
        plain = _grid(4)
        labelled = DesignMatrix.from_arrays(
            *plain.columns(), labels=[f"r{i}" for i in range(4)]
        )
        kneed = DesignMatrix.from_arrays(*plain.columns(), knee_fraction=0.7)
        with pytest.raises(ConfigurationError, match="labelled"):
            DesignMatrix.concat([plain, labelled])
        with pytest.raises(ConfigurationError, match="knee fractions"):
            DesignMatrix.concat([plain, kneed])
        with pytest.raises(ConfigurationError, match="at least one"):
            DesignMatrix.concat([])

    def test_concat_results_rejects_mixed_contracts(self):
        matrix = _grid(6)
        a = evaluate_matrix(matrix, tolerance=0.05, cache=None)
        b = evaluate_matrix(matrix, tolerance=0.10, cache=None)
        with pytest.raises(ConfigurationError, match="contracts"):
            concat_results([a, b])
        assert concat_results([a]) is a


class TestShardedEvaluate:
    @given(
        n_rows=st.integers(1, 60),
        chunk=st.integers(1, 70),
    )
    @settings(max_examples=40, deadline=None)
    def test_serial_sharding_is_bitwise_identical(self, n_rows, chunk):
        matrix = _grid(n_rows)
        reference = evaluate_matrix(matrix, cache=None)
        sharded = evaluate_matrix_sharded(matrix, chunk_rows=chunk)
        assert batch_results_equal(reference, sharded)

    def test_thread_backend_identical(self):
        matrix = _grid(90)
        reference = evaluate_matrix(matrix, cache=None)
        with ParallelExecutor(n_workers=3, backend="thread") as executor:
            sharded = evaluate_matrix(
                matrix, cache=None, executor=executor, chunk_rows=17
            )
        assert batch_results_equal(reference, sharded)

    def test_process_backend_identical(self):
        matrix = _grid(80)
        reference = evaluate_matrix(matrix, cache=None)
        with ParallelExecutor(n_workers=2, backend="process") as executor:
            sharded = evaluate_matrix(
                matrix, cache=None, executor=executor, chunk_rows=23
            )
        assert batch_results_equal(reference, sharded)

    def test_labels_survive_sharding(self):
        plain = _grid(20)
        matrix = DesignMatrix.from_arrays(
            *plain.columns(), labels=[f"design-{i}" for i in range(20)]
        )
        sharded = evaluate_matrix_sharded(matrix, chunk_rows=7)
        assert sharded.matrix.labels == matrix.labels

    def test_identical_chunks_dispatch_once(self, monkeypatch):
        column = np.full(30, 10.0)
        matrix = DesignMatrix.from_arrays(
            column, column, column, column, column
        )
        calls = []
        import repro.batch.executor as executor_module

        original = executor_module._evaluate_shard
        monkeypatch.setattr(
            executor_module,
            "_evaluate_shard",
            lambda task: calls.append(1) or original(task),
        )
        result = evaluate_matrix_sharded(matrix, chunk_rows=10)
        assert len(calls) == 1  # three identical chunks, one evaluation
        reference = evaluate_matrix(matrix, cache=None)
        assert batch_results_equal(reference, result)

    def test_sharded_result_lands_in_the_cache(self):
        matrix = _grid(40)
        cache = BatchCache()
        sharded = evaluate_matrix(matrix, cache=cache, chunk_rows=11)
        again = evaluate_matrix(matrix, cache=cache)
        assert again is sharded  # cache hit on the single-pass path


# ---------------------------------------------------------------------------
# Top-k merging
# ---------------------------------------------------------------------------
class TestTopKMerge:
    def test_merge_equals_full_top_k_with_ties(self):
        # Duplicate every row so ties straddle shard boundaries.
        base = _grid(30)
        matrix = base.take(np.repeat(np.arange(30), 2))
        full = evaluate_matrix(matrix, cache=None)
        for k in (1, 5, 17, 60, 200):
            expected = full.top_k(k)
            indices, merged = top_k_sharded(matrix, k, chunk_rows=7)
            assert batch_results_equal(expected, merged)
            np.testing.assert_array_equal(
                indices, full.top_k_indices(k)
            )

    @given(
        k=st.integers(1, 25),
        chunk=st.integers(1, 40),
        by=st.sampled_from(("safe_velocity", "knee_hz")),
        descending=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_streamed_top_k_property(self, k, chunk, by, descending):
        matrix = _grid(33)
        full = evaluate_matrix(matrix, cache=None)
        expected = full.top_k(k, by=by, descending=descending)
        indices, merged = top_k_sharded(
            matrix, k, by=by, descending=descending, chunk_rows=chunk
        )
        assert batch_results_equal(expected, merged)
        np.testing.assert_array_equal(
            indices, full.top_k_indices(k, by=by, descending=descending)
        )

    def test_top_k_over_a_spec_never_materializes(self):
        spec = _knob_spec()
        full = run_study(spec, cache=None).batch
        indices, merged = top_k_sharded(spec, 4, chunk_rows=5)
        assert batch_results_equal(full.top_k(4), merged)

    def test_merge_top_k_validates(self):
        result = evaluate_matrix(_grid(5), cache=None)
        with pytest.raises(ConfigurationError, match="k must be >= 1"):
            merge_top_k([(np.arange(5), result)], 0)
        with pytest.raises(ConfigurationError, match="at least one"):
            merge_top_k([], 3)
        with pytest.raises(ConfigurationError, match="indices"):
            merge_top_k([(np.arange(3), result)], 3)


# ---------------------------------------------------------------------------
# Sharded studies
# ---------------------------------------------------------------------------
class TestShardedStudies:
    @given(chunk=st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_knob_study_identical_at_any_chunking(self, chunk):
        spec = _knob_spec()
        single = run_study(spec, cache=None)
        sharded = run_study(spec, cache=None, chunk_rows=chunk)
        assert single.equals(sharded)

    def test_scenarios_identical(self):
        spec = _knob_spec(
            scenarios=ScenarioSpec(
                extra_payload_g=(0.0, 75.0), a_max_scale=(1.0, 0.8)
            )
        )
        single = run_study(spec, cache=None)
        for chunk in (1, 5, 11, 1000):
            assert single.equals(run_study(spec, cache=None, chunk_rows=chunk))

    def test_single_axis_labels_identical(self):
        spec = StudySpec(
            design=DesignSpec.knob_axes(
                axes={"compute_runtime_s": (0.01, 0.1, 0.25, 1.0)}
            )
        )
        single = run_study(spec, cache=None)
        sharded = run_study(spec, cache=None, chunk_rows=3)
        assert single.equals(sharded)
        assert sharded.batch.matrix.labels == single.batch.matrix.labels

    def test_presets_and_fleet_identical(self):
        presets = StudySpec(
            design=DesignSpec.presets(
                uav_names=("dji-spark", "asctec-pelican"),
                compute_names=("intel-ncs", "jetson-tx2"),
                algorithm_names=("dronet",),
            )
        )
        fleet = StudySpec(
            design=DesignSpec.fleet(
                uavs=(get_preset("dji-spark"), get_preset("asctec-pelican")),
                f_compute_hz=(5.0, 50.0),
            ),
            scenarios=ScenarioSpec(compute_redundancy=(1.0, 2.0)),
        )
        for spec in (presets, fleet):
            single = run_study(spec, cache=None)
            assert single.equals(run_study(spec, cache=None, chunk_rows=3))

    def test_process_study_identical(self):
        spec = _knob_spec()
        single = run_study(spec, cache=None)
        with ParallelExecutor(n_workers=2, backend="process") as executor:
            parallel = run_study(
                spec, cache=None, executor=executor, chunk_rows=5
            )
        assert single.equals(parallel)

    def test_study_axes_and_size_match_the_planner(self):
        for spec in (
            _knob_spec(),
            _knob_spec(scenarios=ScenarioSpec(extra_payload_g=(0.0, 10.0))),
            StudySpec(
                design=DesignSpec.presets(
                    uav_names=("dji-spark",),
                    compute_names=("intel-ncs", "jetson-tx2"),
                    algorithm_names=("dronet", "trailnet"),
                )
            ),
        ):
            plan = compile_spec(spec)
            assert study_axes(spec) == plan.axes
            assert study_size(spec) == len(plan)

    def test_compile_chunk_validates_range(self):
        spec = _knob_spec()
        with pytest.raises(ConfigurationError, match="out of range"):
            compile_chunk(spec, 0, study_size(spec) + 1)
        with pytest.raises(ConfigurationError, match="out of range"):
            compile_chunk(spec, 3, 3)

    def test_sharded_plan_input(self):
        spec = _knob_spec()
        plan = compile_spec(spec)
        single = run_study(plan, cache=None)
        sharded = run_study(plan, cache=None, chunk_rows=4)
        assert single.equals(sharded)


# ---------------------------------------------------------------------------
# Checkpoints and resume
# ---------------------------------------------------------------------------
class TestCheckpoints:
    def test_checkpoint_writes_manifest_and_shards(self, tmp_path):
        spec = _knob_spec()
        run_study(spec, cache=None, chunk_rows=5, checkpoint=tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        parsed = shard_manifest_from_dict(manifest)
        assert parsed.total_rows == study_size(spec)
        assert parsed.chunk_rows == 5
        shard_files = sorted(tmp_path.glob("shard-*.jsonl"))
        assert len(shard_files) == parsed.n_shards
        record = json.loads(shard_files[0].read_text())
        assert record["start"] == 0 and record["stop"] == 5

    def test_resume_reuses_completed_shards(self, tmp_path, monkeypatch):
        spec = _knob_spec()
        first = run_study(spec, cache=None, chunk_rows=5, checkpoint=tmp_path)
        shard_files = sorted(tmp_path.glob("shard-*.jsonl"))
        shard_files[1].unlink()  # simulate an interrupted run

        calls = []
        import repro.batch.executor as executor_module

        original = executor_module._evaluate_shard
        monkeypatch.setattr(
            executor_module,
            "_evaluate_shard",
            lambda task: calls.append(task) or original(task),
        )
        resumed = run_study(
            spec, cache=None, chunk_rows=5, checkpoint=tmp_path, resume=True
        )
        assert len(calls) == 1  # only the missing shard re-ran
        assert first.equals(resumed)

    def test_resume_adopts_the_manifest_chunking(self, tmp_path):
        spec = _knob_spec()
        first = run_study(spec, cache=None, chunk_rows=7, checkpoint=tmp_path)
        resumed = run_study(spec, cache=None, checkpoint=tmp_path, resume=True)
        assert first.equals(resumed)

    def test_resume_without_a_manifest_is_a_clean_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no checkpoint manifest"):
            run_study(
                _knob_spec(),
                cache=None,
                checkpoint=tmp_path / "missing",
                resume=True,
            )

    def test_resume_without_a_directory_is_an_error(self):
        with pytest.raises(ConfigurationError, match="checkpoint directory"):
            run_study(_knob_spec(), cache=None, resume=True)

    def test_corrupt_shard_is_recomputed_not_trusted(self, tmp_path):
        spec = _knob_spec()
        first = run_study(spec, cache=None, chunk_rows=5, checkpoint=tmp_path)
        shard = sorted(tmp_path.glob("shard-*.jsonl"))[2]
        shard.write_text("{ definitely not json\n")
        resumed = run_study(
            spec, cache=None, chunk_rows=5, checkpoint=tmp_path, resume=True
        )
        assert first.equals(resumed)
        assert json.loads(shard.read_text())["index"] == 2  # rewritten

    def test_misfiled_shard_record_is_recomputed_not_trusted(self, tmp_path):
        """A record whose range disagrees with its index (hand-edited,
        misfiled) must be recomputed — trusting it would silently
        misplace rows in the merge."""
        spec = _knob_spec()
        first = run_study(spec, cache=None, chunk_rows=5, checkpoint=tmp_path)
        shards = sorted(tmp_path.glob("shard-*.jsonl"))
        record = json.loads(shards[2].read_text())
        shards[2].write_text(json.dumps({**record, "index": 1}) + "\n")
        resumed = run_study(
            spec, cache=None, chunk_rows=5, checkpoint=tmp_path, resume=True
        )
        assert first.equals(resumed)

    def test_corrupt_manifest_is_a_clean_error(self, tmp_path):
        spec = _knob_spec()
        run_study(spec, cache=None, chunk_rows=5, checkpoint=tmp_path)
        (tmp_path / "manifest.json").write_text("{ nope")
        with pytest.raises(ConfigurationError, match="manifest .* unreadable"):
            run_study(
                spec, cache=None, chunk_rows=5,
                checkpoint=tmp_path, resume=True,
            )

    def test_mismatched_manifest_is_rejected(self, tmp_path):
        run_study(_knob_spec(), cache=None, chunk_rows=5, checkpoint=tmp_path)
        other = StudySpec(
            design=DesignSpec.knob_axes(
                axes={"compute_tdp_w": (2.0, 20.0)}
            )
        )
        with pytest.raises(ConfigurationError, match="different run"):
            run_study(
                other, cache=None, chunk_rows=5,
                checkpoint=tmp_path, resume=True,
            )
        with pytest.raises(ConfigurationError, match="different run"):
            run_study(
                _knob_spec(), cache=None, chunk_rows=6,
                checkpoint=tmp_path, resume=True,
            )

    def test_checkpointed_top_k_resumes(self, tmp_path):
        matrix = _grid(40)
        expected = evaluate_matrix(matrix, cache=None).top_k(5)
        top_k_sharded(matrix, 5, chunk_rows=10, checkpoint_dir=tmp_path)
        indices, merged = top_k_sharded(
            matrix, 5, chunk_rows=10, checkpoint_dir=tmp_path, resume=True
        )
        assert batch_results_equal(expected, merged)

    def test_manifest_wire_format_validation(self):
        with pytest.raises(ConfigurationError, match="'version'"):
            shard_manifest_from_dict({"version": 99})
        with pytest.raises(ConfigurationError, match="'kind'"):
            shard_manifest_from_dict(
                {
                    "version": 1, "kind": "nonsense", "digest": "x",
                    "total_rows": 1, "chunk_rows": 1, "n_shards": 1,
                    "knee_fraction": None, "tolerance": 0.05,
                    "reduce": None,
                }
            )
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            shard_manifest_from_dict([1, 2])


# ---------------------------------------------------------------------------
# Cache hygiene (the DEFAULT_CACHE satellite bugfix)
# ---------------------------------------------------------------------------
class TestCacheHygiene:
    def test_worker_initializer_starts_from_an_empty_cache(self):
        matrix = _grid(8)
        evaluate_matrix(matrix)  # populate DEFAULT_CACHE
        assert len(DEFAULT_CACHE) >= 1
        _init_worker()  # what every worker process runs on start-up
        assert len(DEFAULT_CACHE) == 0
        assert DEFAULT_CACHE.stats.hits == 0

    def test_clear_default_cache_is_the_public_reset(self):
        evaluate_matrix(_grid(6))
        clear_default_cache()
        assert len(DEFAULT_CACHE) == 0

    def test_concurrent_specs_never_cross_contaminate(self):
        """Back-to-back sharded runs of different specs each match
        their own single-process reference — no stale cross-spec hits
        from shared worker/module state."""
        spec_a = _knob_spec()
        spec_b = StudySpec(
            design=DesignSpec.knob_axes(
                axes={
                    "compute_tdp_w": (2.0, 20.0, 29.0),
                    "compute_runtime_s": (0.02, 0.2, 0.3),
                    "payload_weight_g": (10.0, 160.0),
                }
            )
        )
        reference_a = run_study(spec_a, cache=None)
        reference_b = run_study(spec_b, cache=None)
        with ParallelExecutor(n_workers=2, backend="thread") as executor:
            for _ in range(2):
                assert reference_a.equals(
                    run_study(spec_a, executor=executor, chunk_rows=5)
                )
                assert reference_b.equals(
                    run_study(spec_b, executor=executor, chunk_rows=5)
                )

    def test_in_process_backends_never_pin_chunks_in_the_cache(self):
        """Serial and thread shards must honor the memory contract:
        chunk results never land in the process-wide default cache
        (only the process backend memoizes, in its own workers)."""
        matrix = _grid(60)
        reference = evaluate_matrix(matrix, cache=None)
        for backend in ("serial", "thread"):
            clear_default_cache()
            with ParallelExecutor(n_workers=2, backend=backend) as executor:
                result = evaluate_matrix(
                    matrix, cache=None, executor=executor, chunk_rows=10
                )
            assert batch_results_equal(reference, result)
            assert len(DEFAULT_CACHE) == 0, backend

    def test_worker_shard_evaluation_uses_a_scoped_key(self):
        """Two shards with identical row *shapes* but different values
        must never collide in the worker cache."""
        clear_default_cache()
        spec = _knob_spec()
        shards = list(iter_chunks(spec, chunk_rows=6))
        first = _evaluate_shard(shards[0].task)
        second = _evaluate_shard(shards[1].task)
        assert not batch_results_equal(first["batch"], second["batch"])


# ---------------------------------------------------------------------------
# Executor surface validation
# ---------------------------------------------------------------------------
class TestExecutorValidation:
    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ParallelExecutor(backend="gpu")

    def test_bad_worker_count(self):
        with pytest.raises(ConfigurationError, match="n_workers"):
            ParallelExecutor(n_workers=0)

    def test_bad_chunk_rows_names_the_knob(self):
        with pytest.raises(ConfigurationError, match="chunk_rows"):
            evaluate_matrix_sharded(_grid(4), chunk_rows=0)
        with pytest.raises(ConfigurationError, match="chunk_rows"):
            list(iter_chunks(_grid(4), chunk_rows=-1))

    def test_iter_chunks_rejects_unknown_sources(self):
        with pytest.raises(ConfigurationError, match="DesignMatrix or a"):
            list(iter_chunks(object(), chunk_rows=4))
        with pytest.raises(ConfigurationError, match="StudySpec"):
            evaluate_spec_sharded(object())
        with pytest.raises(ConfigurationError, match="StudySpec"):
            top_k_sharded(object(), 3)

    def test_scenario_grid_roundtrip_through_spec_chunks(self):
        spec = _knob_spec()
        chunks = [
            compile_chunk(spec, start, stop)
            for start, stop in shard_ranges(study_size(spec), 4)
        ]
        merged = DesignMatrix.concat([c.matrix for c in chunks])
        assert design_matrices_equal(compile_spec(spec).matrix, merged)


# ---------------------------------------------------------------------------
# CLI: scaling flags, exit codes, resume failure modes
# ---------------------------------------------------------------------------
class TestStudyCLIScaling:
    def _spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(_knob_spec().to_json())
        return str(path)

    def test_workers_flag_runs_sharded(self, capsys, tmp_path):
        code = cli_main(
            [
                "study", "--spec", self._spec_file(tmp_path),
                "--workers", "2", "--backend", "thread",
                "--chunk-rows", "5", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["batch"]["safe_velocity"]) == 18

    def test_bad_workers_exits_2_naming_the_flag(self, capsys):
        code = cli_main(
            ["study", "--knob", "compute_tdp_w", "--values", "1", "5",
             "--workers", "0"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--workers" in err and "0" in err

    def test_bad_chunk_rows_exits_2_naming_the_flag(self, capsys):
        code = cli_main(
            ["study", "--knob", "compute_tdp_w", "--values", "1", "5",
             "--chunk-rows", "-3"]
        )
        assert code == 2
        assert "--chunk-rows" in capsys.readouterr().err

    def test_backend_without_workers_exits_2(self, capsys):
        code = cli_main(
            ["study", "--knob", "compute_tdp_w", "--values", "1", "5",
             "--backend", "thread"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--backend" in err and "--workers" in err

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        ckpt = tmp_path / "ckpt"
        assert cli_main(
            ["study", "--spec", spec, "--chunk-rows", "5",
             "--checkpoint", str(ckpt)]
        ) == 0
        capsys.readouterr()
        assert cli_main(
            ["study", "--spec", spec, "--resume", str(ckpt)]
        ) == 0
        assert "18 designs" in capsys.readouterr().out

    def test_resume_missing_dir_is_a_clean_error(self, capsys, tmp_path):
        code = cli_main(
            ["study", "--spec", self._spec_file(tmp_path),
             "--resume", str(tmp_path / "never-written")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_resume_corrupt_dir_is_a_clean_error(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        ckpt = tmp_path / "ckpt"
        assert cli_main(
            ["study", "--spec", spec, "--chunk-rows", "5",
             "--checkpoint", str(ckpt)]
        ) == 0
        (ckpt / "manifest.json").write_text("{ broken")
        capsys.readouterr()
        code = cli_main(["study", "--spec", spec, "--resume", str(ckpt)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "manifest" in err
        assert "Traceback" not in err

    def test_checkpoint_and_resume_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(
                ["study", "--knob", "compute_tdp_w", "--values", "1",
                 "--checkpoint", str(tmp_path), "--resume", str(tmp_path)]
            )


# ---------------------------------------------------------------------------
# Shard failure context (ShardExecutionError)
# ---------------------------------------------------------------------------
class TestShardFailureContext:
    def _failing_shard(self, index: int = 3) -> "Shard":
        # Mismatched column lengths make DesignMatrix.from_arrays raise
        # inside the worker — a genuine in-shard failure that survives
        # pickling to a process pool.
        from repro.batch import Shard

        return Shard(
            index=index,
            start=10,
            stop=20,
            task={
                "kind": "matrix",
                "index": index,
                "start": 10,
                "stop": 20,
                "columns": {
                    "sensing_range_m": np.full(10, 10.0),
                    "a_max": np.full(10, 50.0),
                    "f_sensor_hz": np.full(10, 60.0),
                    "f_compute_hz": np.full(3, 100.0),  # wrong length
                    "f_control_hz": np.full(10, 200.0),
                },
                "labels": None,
                "matrix_knee_fraction": None,
                "knee_fraction": 0.85,
                "tolerance": 0.05,
            },
        )

    def test_serial_failure_names_shard_and_row_range(self):
        from repro.errors import ShardExecutionError

        executor = ParallelExecutor(n_workers=1, backend="serial")
        with pytest.raises(ShardExecutionError) as excinfo:
            list(executor.map_shards([self._failing_shard()]))
        err = excinfo.value
        assert err.shard_index == 3
        assert (err.start, err.stop) == (10, 20)
        assert "shard 3" in str(err)
        assert "[10, 20)" in str(err)
        # The original failure stays attached for debugging.
        assert isinstance(err.__cause__, ConfigurationError)

    def test_process_pool_failure_keeps_shard_context(self):
        # Regression: a worker-process traceback used to surface as a
        # bare ConfigurationError with no hint of which rows died.
        from repro.errors import ShardExecutionError

        with ParallelExecutor(n_workers=1, backend="process") as executor:
            with pytest.raises(ShardExecutionError) as excinfo:
                list(executor.map_shards([self._failing_shard(index=7)]))
        err = excinfo.value
        assert err.shard_index == 7
        assert (err.start, err.stop) == (10, 20)
        assert "shard 7" in str(err)

    def test_shard_error_is_picklable_with_fields(self):
        import pickle

        from repro.errors import ShardExecutionError

        err = ShardExecutionError(
            "shard 2 (rows [4, 8)) failed", shard_index=2, start=4, stop=8
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ShardExecutionError)
        assert clone.shard_index == 2
        assert (clone.start, clone.stop) == (4, 8)
        assert str(clone) == str(err)

    def test_wrapper_does_not_double_wrap(self, monkeypatch):
        import repro.batch.executor as executor_module
        from repro.errors import ShardExecutionError

        inner = ShardExecutionError("already wrapped", shard_index=1)

        def explode(task):
            raise inner

        monkeypatch.setattr(
            executor_module, "_evaluate_shard_task", explode
        )
        with pytest.raises(ShardExecutionError) as excinfo:
            executor_module._evaluate_shard({"index": 0})
        assert excinfo.value is inner


# ---------------------------------------------------------------------------
# Observability: tracer + progress through the executor stack
# ---------------------------------------------------------------------------
class TestExecutorObservability:
    def test_sharded_matrix_records_phase_spans(self):
        from repro.obs import Tracer

        matrix = _grid(40)
        tracer = Tracer()
        result = evaluate_matrix_sharded(
            matrix, chunk_rows=11, tracer=tracer
        )
        names = set(tracer.span_names())
        assert {
            "shard.compile", "shard.evaluate", "shard.task",
            "engine.evaluate", "study.merge",
        } <= names
        # Worker-side rows attributes sum to the grid size.
        rows = sum(
            s.attributes["rows"]
            for s in tracer.spans
            if s.name == "shard.evaluate"
        )
        assert rows == len(matrix)
        assert tracer.counters_snapshot()["shards.completed"] == 4
        # Tracing never perturbs the numbers.
        assert batch_results_equal(
            result, evaluate_matrix(matrix, cache=None)
        )

    def test_spec_sharded_records_compile_span_with_totals(self):
        from repro.obs import Tracer

        tracer = Tracer()
        evaluate_spec_sharded(_knob_spec(), chunk_rows=5, tracer=tracer)
        compile_spans = [
            s for s in tracer.spans if s.name == "study.compile"
        ]
        assert len(compile_spans) == 1
        assert compile_spans[0].attributes["rows"] == 18
        assert compile_spans[0].attributes["shards"] == 4

    def test_worker_spans_land_on_shard_tracks(self):
        from repro.obs import Tracer

        tracer = Tracer()
        evaluate_matrix_sharded(_grid(30), chunk_rows=10, tracer=tracer)
        worker_tids = {
            s.tid for s in tracer.spans if s.name == "shard.evaluate"
        }
        assert worker_tids == {1, 2, 3}  # shard index + 1
        driver_tids = {
            s.tid for s in tracer.spans if s.name == "shard.task"
        }
        assert driver_tids == {0}

    def test_process_workers_ship_telemetry_home(self):
        from repro.obs import Tracer

        matrix = _grid(24)
        tracer = Tracer()
        with ParallelExecutor(n_workers=2, backend="process") as executor:
            result = evaluate_matrix_sharded(
                matrix, executor=executor, chunk_rows=12, tracer=tracer
            )
        names = set(tracer.span_names())
        assert "shard.evaluate" in names  # absorbed from the workers
        task_spans = [s for s in tracer.spans if s.name == "shard.task"]
        assert len(task_spans) == 2
        for span in task_spans:
            assert span.attributes["compute_s"] >= 0.0
            assert span.attributes["queue_wait_s"] >= 0.0
        counters = tracer.counters_snapshot()
        assert counters["rows.evaluated"] == len(matrix)
        assert batch_results_equal(
            result, evaluate_matrix(matrix, cache=None)
        )

    def test_shard_results_carry_worker_telemetry(self):
        from repro.batch import iter_chunks
        from repro.obs import Tracer

        shards = list(iter_chunks(_grid(20), chunk_rows=10))
        with ParallelExecutor(n_workers=2, backend="process") as executor:
            results = list(executor.map_shards(shards, tracer=Tracer()))
        for result in results:
            assert result.telemetry is not None
            assert result.telemetry["elapsed_s"] >= 0.0
            assert any(
                e["name"] == "shard.evaluate"
                for e in result.telemetry["events"]
            )

    def test_in_process_shards_record_directly(self):
        # Serial/thread workers share the parent's process and epoch:
        # their spans land straight in the tracer (exact times, shard
        # tracks), and the ShardResult ships no wire payload at all.
        from repro.batch import iter_chunks
        from repro.obs import Tracer

        executor = ParallelExecutor(n_workers=1, backend="serial")
        shards = list(iter_chunks(_grid(20), chunk_rows=10))
        tracer = Tracer()
        results = list(executor.map_shards(shards, tracer=tracer))
        for result in results:
            assert result.telemetry is None
        evaluate_tids = {
            s.tid for s in tracer.spans if s.name == "shard.evaluate"
        }
        assert evaluate_tids == {1, 2}
        task_spans = [s for s in tracer.spans if s.name == "shard.task"]
        assert len(task_spans) == 2
        for span in task_spans:
            assert span.attributes["compute_s"] >= 0.0
            assert span.attributes["queue_wait_s"] >= 0.0
        assert tracer.counters_snapshot()["rows.evaluated"] == 20
        # Untraced runs carry none either.
        for result in executor.map_shards(shards):
            assert result.telemetry is None

    def test_progress_fires_per_shard_with_row_totals(self):
        from repro.obs import Progress

        snapshots = []
        matrix = _grid(35)
        evaluate_matrix_sharded(
            matrix, chunk_rows=10, progress=snapshots.append
        )
        assert [p.done for p in snapshots] == [1, 2, 3, 4]
        assert all(isinstance(p, Progress) for p in snapshots)
        assert all(p.total == 4 for p in snapshots)
        assert all(p.rows_total == len(matrix) for p in snapshots)
        assert snapshots[-1].rows_done == len(matrix)
        assert snapshots[-1].fraction == 1.0

    def test_progress_counts_checkpoint_restored_shards(self, tmp_path):
        snapshots = []
        matrix = _grid(30)
        evaluate_matrix_sharded(
            matrix, chunk_rows=10, checkpoint_dir=tmp_path
        )
        evaluate_matrix_sharded(
            matrix,
            chunk_rows=10,
            checkpoint_dir=tmp_path,
            progress=snapshots.append,
        )
        # Every shard resumes from the checkpoint, yet progress still
        # walks to completion.
        assert [p.done for p in snapshots] == [1, 2, 3]
        assert snapshots[-1].rows_done == len(matrix)

    def test_resumed_shards_counted_in_tracer(self, tmp_path):
        from repro.obs import Tracer

        matrix = _grid(30)
        evaluate_matrix_sharded(
            matrix, chunk_rows=10, checkpoint_dir=tmp_path
        )
        tracer = Tracer()
        evaluate_matrix_sharded(
            matrix, chunk_rows=10, checkpoint_dir=tmp_path, tracer=tracer
        )
        assert tracer.counters_snapshot()["shards.resumed"] == 3

    def test_checkpoint_writes_traced(self, tmp_path):
        from repro.obs import Tracer

        tracer = Tracer()
        evaluate_matrix_sharded(
            _grid(30), chunk_rows=10, checkpoint_dir=tmp_path, tracer=tracer
        )
        assert tracer.counters_snapshot()["checkpoint.writes"] == 3
        assert "checkpoint.write" in tracer.span_names()

    def test_dedupe_hits_counted(self):
        from repro.obs import Tracer

        column = np.full(30, 10.0)
        matrix = DesignMatrix.from_arrays(
            column, column, column, column, column
        )
        tracer = Tracer()
        evaluate_matrix_sharded(matrix, chunk_rows=10, tracer=tracer)
        counters = tracer.counters_snapshot()
        assert counters["shards.completed"] == 1  # one unique chunk
        assert counters["shards.dedupe_hits"] == 2

    def test_top_k_sharded_traced(self):
        from repro.obs import Tracer

        matrix = _grid(40)
        tracer = Tracer()
        indices, batch = top_k_sharded(
            matrix, k=5, chunk_rows=10, tracer=tracer
        )
        names = set(tracer.span_names())
        assert "shard.reduce" in names
        assert "study.merge" in names
        reference_indices, reference = top_k_sharded(
            matrix, k=5, chunk_rows=10
        )
        np.testing.assert_array_equal(indices, reference_indices)
        assert batch_results_equal(batch, reference)


# ---------------------------------------------------------------------------
# CLI observability flags
# ---------------------------------------------------------------------------
class TestStudyCLIObservability:
    def _spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(_knob_spec().to_json())
        return str(path)

    def test_traced_sharded_study_emits_chrome_trace(
        self, capsys, tmp_path
    ):
        # The acceptance path: a sharded study with --trace writes a
        # valid Chrome trace whose spans cover every phase and whose
        # per-shard row counts sum to the grid size.
        trace = tmp_path / "trace.json"
        code = cli_main(
            [
                "study", "--spec", self._spec_file(tmp_path),
                "--workers", "2", "--backend", "thread",
                "--chunk-rows", "5", "--trace", str(trace), "--json",
            ]
        )
        assert code == 0
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert {
            "study.compile", "shard.evaluate", "study.merge",
            "study.select",
        } <= names
        rows = sum(
            e["args"]["rows"]
            for e in events
            if e["ph"] == "X" and e["name"] == "shard.evaluate"
        )
        assert rows == 18  # the full 3 x 3 x 2 grid, exactly once
        # stdout stays pure JSON, telemetry included.
        data = json.loads(capsys.readouterr().out)
        assert data["telemetry"]["counters"]["shards.completed"] == 4

    def test_metrics_and_progress_go_to_stderr(self, capsys, tmp_path):
        code = cli_main(
            [
                "study", "--spec", self._spec_file(tmp_path),
                "--chunk-rows", "5", "--metrics", "--progress", "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout still parses
        assert "shards 4/4" in captured.err  # progress reached the end
        assert "shard.evaluate" in captured.err  # metrics table
        assert "rows.evaluated" in captured.err

    def test_untraced_study_carries_no_telemetry(self, capsys, tmp_path):
        code = cli_main(
            ["study", "--spec", self._spec_file(tmp_path), "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert "telemetry" not in data
