"""Tests for the Eq. 5 acceleration models and drag."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.physics import (
    DEFAULT_BRAKING_PITCH_DEG,
    FixedAcceleration,
    PitchEnvelopeModel,
    QuadraticDrag,
    ThrustMarginModel,
)
from repro.errors import ConfigurationError, InfeasibleDesignError
from repro.units import GRAVITY


class TestThrustMargin:
    def test_uav_a_margin(self):
        # Table I UAV-A: 4x435 g pull, 1620 g all-up.
        model = ThrustMarginModel(total_thrust_g=1740.0)
        a = model.max_acceleration(1620.0)
        assert a == pytest.approx(GRAVITY * 120.0 / 1620.0, rel=1e-9)

    def test_floor_engages_for_overweight(self):
        # UAV-B: 1830 g exceeds the 1740 g rated pull.
        model = ThrustMarginModel(total_thrust_g=1740.0)
        a = model.max_acceleration(1830.0)
        assert a == pytest.approx(model.braking_floor)

    def test_floor_value(self):
        model = ThrustMarginModel(total_thrust_g=1000.0)
        expected = GRAVITY * math.tan(
            math.radians(DEFAULT_BRAKING_PITCH_DEG)
        )
        assert model.braking_floor == pytest.approx(expected)

    def test_no_floor_raises_when_overweight(self):
        model = ThrustMarginModel(
            total_thrust_g=1000.0, braking_pitch_deg=0.0
        )
        with pytest.raises(InfeasibleDesignError):
            model.max_acceleration(1200.0)

    def test_max_payload_with_floor_is_unbounded(self):
        model = ThrustMarginModel(total_thrust_g=1000.0)
        assert model.max_payload_g(500.0) == math.inf

    def test_max_payload_without_floor(self):
        model = ThrustMarginModel(
            total_thrust_g=1000.0, braking_pitch_deg=0.0
        )
        assert model.max_payload_g(600.0) == pytest.approx(400.0)

    @given(
        thrust=st.floats(min_value=50.0, max_value=10_000.0),
        mass=st.floats(min_value=10.0, max_value=20_000.0),
    )
    def test_acceleration_always_positive(self, thrust, mass):
        model = ThrustMarginModel(total_thrust_g=thrust)
        assert model.max_acceleration(mass) > 0.0

    @given(
        thrust=st.floats(min_value=500.0, max_value=5_000.0),
        m1=st.floats(min_value=100.0, max_value=4_000.0),
        m2=st.floats(min_value=100.0, max_value=4_000.0),
    )
    def test_monotone_nonincreasing_in_mass(self, thrust, m1, m2):
        model = ThrustMarginModel(total_thrust_g=thrust)
        lo, hi = sorted((m1, m2))
        assert model.max_acceleration(lo) >= model.max_acceleration(hi) - 1e-12

    def test_invalid_thrust_rejected(self):
        with pytest.raises(ConfigurationError):
            ThrustMarginModel(total_thrust_g=0.0)

    def test_invalid_pitch_rejected(self):
        with pytest.raises(ConfigurationError):
            ThrustMarginModel(total_thrust_g=100.0, braking_pitch_deg=95.0)


class TestPitchEnvelope:
    def test_hover_impossible_raises(self):
        model = PitchEnvelopeModel(total_thrust_g=1000.0)
        with pytest.raises(InfeasibleDesignError):
            model.max_acceleration(1000.0)

    def test_unconstrained_matches_geometry(self):
        # T/W = 2 -> alpha = 60 deg -> a = g tan(60).
        model = PitchEnvelopeModel(total_thrust_g=2000.0, max_pitch_deg=89.0)
        a = model.max_acceleration(1000.0)
        assert a == pytest.approx(GRAVITY * math.tan(math.acos(0.5)))

    def test_pitch_cap_binds(self):
        model = PitchEnvelopeModel(total_thrust_g=2000.0, max_pitch_deg=10.0)
        a = model.max_acceleration(1000.0)
        assert a == pytest.approx(GRAVITY * math.tan(math.radians(10.0)))

    def test_max_payload(self):
        model = PitchEnvelopeModel(total_thrust_g=2000.0)
        assert model.max_payload_g(1500.0) == pytest.approx(500.0)


class TestFixedAcceleration:
    def test_mass_independent(self):
        model = FixedAcceleration(50.0)
        assert model.max_acceleration(1.0) == 50.0
        assert model.max_acceleration(1e6) == 50.0

    def test_generic_max_payload_is_unbounded(self):
        assert FixedAcceleration(5.0).max_payload_g(100.0) == math.inf


class TestQuadraticDrag:
    def test_force_quadratic(self):
        drag = QuadraticDrag(cd_area_m2=0.1)
        assert drag.force_n(2.0) == pytest.approx(4.0 * drag.force_n(1.0))

    def test_force_opposes_motion_sign(self):
        drag = QuadraticDrag(cd_area_m2=0.1)
        assert drag.force_n(-2.0) == -drag.force_n(2.0)

    def test_deceleration_scales_with_mass(self):
        drag = QuadraticDrag(cd_area_m2=0.1)
        assert drag.deceleration(3.0, 1000.0) == pytest.approx(
            2.0 * drag.deceleration(3.0, 2000.0)
        )

    def test_terminal_velocity_balances(self):
        drag = QuadraticDrag(cd_area_m2=0.05)
        v_t = drag.terminal_velocity(2.0, 1500.0)
        assert drag.deceleration(v_t, 1500.0) == pytest.approx(2.0)

    def test_zero_area_terminal_velocity_infinite(self):
        drag = QuadraticDrag(cd_area_m2=0.0)
        assert drag.terminal_velocity(1.0, 1000.0) == math.inf

    @given(v=st.floats(min_value=0.0, max_value=60.0))
    def test_force_nonnegative_forward(self, v):
        drag = QuadraticDrag(cd_area_m2=0.08)
        assert drag.force_n(v) >= 0.0
