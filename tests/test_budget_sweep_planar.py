"""Tests for mass budgets, knob sweeps and the planar cross-validation."""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundKind
from repro.errors import ConfigurationError
from repro.sim.obstacle_stop import ObstacleStopConfig, run_obstacle_stop
from repro.sim.planar_validation import run_planar_obstacle_stop
from repro.skyline.knobs import Knobs
from repro.skyline.sweep import SWEEPABLE_KNOBS, sweep_knob
from repro.uav.budget import mass_budget
from repro.uav.presets import custom_s500, dji_spark
from repro.compute.platforms import get_platform


class TestMassBudget:
    def test_sums_to_total(self, uav_a, spark_agx):
        for uav in (uav_a, spark_agx, spark_agx.with_redundancy(2)):
            budget = mass_budget(uav)
            assert sum(line.mass_g for line in budget.lines) == (
                pytest.approx(uav.total_mass_g)
            )
            assert sum(line.fraction for line in budget.lines) == (
                pytest.approx(1.0)
            )

    def test_override_budget_has_unitemized_line(self, uav_a):
        budget = mass_budget(uav_a)
        items = [line.item for line in budget.lines]
        assert any("unitemized" in item for item in items)

    def test_component_budget_itemizes_heatsink(self, spark_agx):
        budget = mass_budget(spark_agx)
        heatsink = [l for l in budget.lines if "heatsink" in l.item]
        assert len(heatsink) == 1
        assert heatsink[0].mass_g == pytest.approx(162.0, abs=1.0)

    def test_compute_fraction_agx_dominates(self, spark_agx, spark_ncs):
        assert mass_budget(spark_agx).compute_fraction > 0.5
        assert mass_budget(spark_ncs).compute_fraction < 0.2

    def test_thrust_margin(self, uav_a):
        budget = mass_budget(uav_a)
        assert budget.thrust_margin_g == pytest.approx(120.0)
        over = mass_budget(custom_s500("B"))
        assert over.thrust_margin_g < 0

    def test_table_renders(self, uav_a):
        text = mass_budget(uav_a).table()
        assert "TOTAL" in text
        assert "100.0%" in text


class TestKnobSweep:
    def test_tdp_sweep_monotone(self):
        result = sweep_knob(
            Knobs(), "compute_tdp_w", [1.0, 5.0, 15.0, 30.0]
        )
        velocities = [p.safe_velocity for p in result.points]
        assert velocities == sorted(velocities, reverse=True)

    def test_runtime_sweep_finds_crossover(self):
        # Sweeping compute runtime from fast to slow must cross from
        # physics-bound into compute-bound territory.
        result = sweep_knob(
            Knobs(),
            "compute_runtime_s",
            [0.005, 0.02, 0.1, 0.5, 2.0],
        )
        bounds = [p.bound for p in result.points]
        assert BoundKind.PHYSICS in bounds
        assert BoundKind.COMPUTE in bounds
        assert result.crossover_values()

    def test_sensor_range_extends_roof(self):
        result = sweep_knob(Knobs(), "sensor_range_m", [2.0, 5.0, 10.0])
        roofs = [p.roof_velocity for p in result.points]
        assert roofs == sorted(roofs)

    def test_table_and_figure(self):
        result = sweep_knob(Knobs(), "payload_weight_g", [0.0, 200.0])
        assert "payload_weight_g" in result.table()
        svg = result.figure().render().to_svg()
        assert "physics roof" in svg

    def test_invalid_knob_rejected(self):
        with pytest.raises(ConfigurationError, match="sweepable"):
            sweep_knob(Knobs(), "rotor_count", [4])
        with pytest.raises(ConfigurationError):
            sweep_knob(Knobs(), "compute_tdp_w", [])

    def test_all_declared_knobs_sweep(self):
        for knob in SWEEPABLE_KNOBS:
            base_value = getattr(Knobs(), knob)
            result = sweep_knob(Knobs(), knob, [base_value])
            assert len(result.points) == 1


class TestPlanarCrossValidation:
    def test_agrees_with_longitudinal_model(self, uav_a):
        for velocity in (1.5, 2.4):
            planar = run_planar_obstacle_stop(uav_a, velocity, seed=1)
            longitudinal = run_obstacle_stop(
                uav_a,
                ObstacleStopConfig(cruise_velocity=velocity),
                seed=1,
            )
            assert planar.infraction == longitudinal.infraction
            assert planar.stop_position_m == pytest.approx(
                longitudinal.stop_position_m, rel=0.1
            )

    def test_reaches_cruise_with_bounded_overshoot(self, uav_a):
        flight = run_planar_obstacle_stop(uav_a, 1.5, seed=2)
        assert flight.peak_velocity >= 1.45  # reaches the setpoint
        assert flight.peak_velocity <= 1.5 * 1.25  # PI overshoot bounded

    def test_altitude_held(self, uav_a):
        flight = run_planar_obstacle_stop(uav_a, 1.5, seed=2)
        assert flight.max_altitude_error_m < 0.2

    def test_spark_flies_too(self):
        uav = dji_spark(get_platform("intel-ncs"))
        flight = run_planar_obstacle_stop(uav, 3.0, seed=0)
        assert not flight.infraction  # far below the ~15 m/s roof
