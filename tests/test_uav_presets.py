"""Calibration tests: presets must reproduce the paper's anchors."""

from __future__ import annotations

import pytest

from repro.autonomy.workloads import get_algorithm
from repro.compute.platforms import get_platform
from repro.errors import ConfigurationError, UnknownComponentError
from repro.uav.classes import SizeClass, classify_size, envelope_for
from repro.uav.presets import asctec_pelican, custom_s500, dji_spark, nano_uav
from repro.uav.registry import UAV_PRESETS, get_preset


class TestS500Presets:
    def test_predicted_velocities_near_paper(self):
        # Paper Sec. IV: 2.13 / 1.58 / 1.53 / 1.51 m/s at the 10 Hz loop.
        paper = {"A": 2.13, "C": 1.58, "D": 1.53, "B": 1.51}
        for variant, expected in paper.items():
            uav = custom_s500(variant)
            v = uav.f1(10.0).velocity_at(10.0)
            assert v == pytest.approx(expected, rel=0.06), variant

    def test_b_and_d_share_the_braking_floor(self):
        # Both sit below the rated margin; the paper measured ~1.5 both.
        v_b = custom_s500("B").f1(10.0).velocity_at(10.0)
        v_d = custom_s500("D").f1(10.0).velocity_at(10.0)
        assert v_b == pytest.approx(v_d)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            custom_s500("E")

    def test_variant_case_insensitive(self):
        assert custom_s500("a").name == "uav-a"


class TestSparkCalibration:
    def test_agx_15w_raises_velocity_75pct(self):
        # The Sec. VI-A anchor used to calibrate the Spark thrust.
        dronet = get_algorithm("dronet")
        roofs = {}
        for name in ("jetson-agx-30w", "jetson-agx-15w"):
            uav = dji_spark(get_platform(name))
            roofs[name] = uav.f1(dronet.throughput_on(uav.compute)).roof_velocity
        gain = roofs["jetson-agx-15w"] / roofs["jetson-agx-30w"] - 1.0
        assert gain == pytest.approx(0.75, abs=0.01)

    def test_ncs_beats_agx(self):
        ncs = dji_spark(get_platform("intel-ncs"))
        agx = dji_spark(get_platform("jetson-agx-30w"))
        assert ncs.f1(150.0).roof_velocity > agx.f1(230.0).roof_velocity

    def test_spark_tx2_knee_near_30hz(self):
        uav = dji_spark(get_platform("jetson-tx2"))
        knee = uav.f1(178.0).knee.throughput_hz
        assert knee == pytest.approx(33.8, abs=0.5)  # paper: "only 30 Hz"


class TestPelicanCalibration:
    def test_case_b_knee_43hz(self, pelican_tx2):
        assert pelican_tx2.f1(1.1).knee.throughput_hz == pytest.approx(
            43.0, abs=0.2
        )

    def test_case_b_spa_velocity(self, pelican_tx2):
        assert pelican_tx2.f1(1.1).safe_velocity == pytest.approx(
            2.30, abs=0.02
        )

    def test_case_c_dmr_costs_33pct(self):
        uav = asctec_pelican(get_platform("jetson-tx2"), sensor_range_m=4.5)
        dmr = uav.with_redundancy(2)
        drop = 1.0 - dmr.f1(178.0).roof_velocity / uav.f1(178.0).roof_velocity
        assert drop == pytest.approx(0.33, abs=0.005)


class TestNanoCalibration:
    def test_knee_26hz(self, nano_pulp):
        assert nano_pulp.f1(6.0).knee.throughput_hz == pytest.approx(
            26.0, abs=0.2
        )

    def test_pulp_speedup_433(self, nano_pulp):
        report = nano_pulp.f1(6.0).optimality()
        assert report.required_speedup == pytest.approx(4.33, abs=0.05)

    def test_roof_near_5ms(self, nano_pulp):
        assert nano_pulp.f1(6.0).roof_velocity == pytest.approx(5.0, abs=0.1)


class TestRegistry:
    def test_all_presets_instantiate(self):
        for name in UAV_PRESETS:
            uav = get_preset(name)
            assert uav.total_mass_g > 0
            assert uav.max_acceleration > 0

    def test_unknown_preset(self):
        with pytest.raises(UnknownComponentError):
            get_preset("not-a-drone")

    def test_presets_are_fresh_instances(self):
        assert get_preset("dji-spark") is not get_preset("dji-spark")


class TestSizeClasses:
    def test_classification(self):
        assert classify_size(92.0) is SizeClass.NANO
        assert classify_size(250.0) is SizeClass.MICRO
        assert classify_size(651.0) is SizeClass.MINI

    def test_preset_classes(self):
        assert classify_size(nano_uav().frame.size_mm) is SizeClass.NANO
        assert classify_size(asctec_pelican().frame.size_mm) is SizeClass.MINI

    def test_envelopes(self):
        nano = envelope_for(SizeClass.NANO)
        mini = envelope_for(SizeClass.MINI)
        assert nano.typical_battery_mah == 240.0
        assert mini.typical_battery_mah == 3830.0
        assert nano.typical_endurance_min < mini.typical_endurance_min

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            classify_size(0.0)
