"""Tests for the closed-form sensitivity analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import F1Model
from repro.core.safety import safe_velocity
from repro.core.sensitivity import analyze_sensitivity, velocity_partials
from repro.uav.presets import custom_s500

D = st.floats(min_value=0.5, max_value=50.0)
A = st.floats(min_value=0.1, max_value=60.0)
T = st.floats(min_value=0.01, max_value=10.0)


def _finite_difference(fn, x, h=1e-6):
    return (fn(x + h) - fn(x - h)) / (2 * h)


class TestPartials:
    @given(t=T, d=D, a=A)
    @settings(max_examples=100)
    def test_range_partial_matches_fd(self, t, d, a):
        analytic, _, _ = velocity_partials(t, d, a)
        numeric = _finite_difference(
            lambda x: safe_velocity(t, x, a), d, h=d * 1e-6
        )
        assert analytic == pytest.approx(numeric, rel=1e-4)

    @given(t=T, d=D, a=A)
    @settings(max_examples=100)
    def test_acceleration_partial_matches_fd(self, t, d, a):
        _, analytic, _ = velocity_partials(t, d, a)
        numeric = _finite_difference(
            lambda x: safe_velocity(t, d, x), a, h=a * 1e-6
        )
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-8)

    @given(t=T, d=D, a=A)
    @settings(max_examples=100)
    def test_period_partial_matches_fd(self, t, d, a):
        _, _, analytic = velocity_partials(t, d, a)
        numeric = _finite_difference(
            lambda x: safe_velocity(x, d, a), t, h=max(t * 1e-6, 1e-9)
        )
        assert analytic == pytest.approx(numeric, rel=1e-3)

    @given(t=T, d=D, a=A)
    def test_signs(self, t, d, a):
        dv_dd, dv_da, dv_dt = velocity_partials(t, d, a)
        assert dv_dd > 0  # longer sight: faster
        assert dv_da > 0  # harder braking: faster
        assert dv_dt < 0  # slower decisions: slower


class TestAnalyzeSensitivity:
    def test_uav_a_payload_cost(self, uav_a):
        model = uav_a.f1(10.0)
        report = analyze_sensitivity(
            model, uav_a.acceleration_model, uav_a.total_mass_g
        )
        # Near the margin, every extra gram costs measurable velocity.
        assert report.d_payload_per_gram is not None
        assert report.d_payload_per_gram < 0
        # ~0.44 m/s over the 50 g A->C step => ~9e-3 m/s per gram.
        assert abs(report.d_payload_per_gram) == pytest.approx(
            0.0087, rel=0.2
        )

    def test_floor_regime_mass_is_free(self):
        uav_b = custom_s500("B")  # braking-floor regime
        model = uav_b.f1(10.0)
        report = analyze_sensitivity(
            model, uav_b.acceleration_model, uav_b.total_mass_g
        )
        assert report.d_payload_per_gram == 0.0

    def test_no_payload_without_thrust_model(self, uav_a):
        report = analyze_sensitivity(uav_a.f1(10.0))
        assert report.d_payload_per_gram is None

    def test_dominant_knob_near_knee_is_physics(self, uav_a):
        # At the knee, throughput elasticity is tiny; range/accel rule.
        model = uav_a.f1(10.0)
        report = analyze_sensitivity(model)
        assert report.dominant_knob() in ("sensing range", "acceleration")
        assert abs(report.elasticity_throughput) < 0.1

    def test_throughput_elasticity_grows_when_compute_bound(self):
        # Deep in the compute-bound region v ~= d*f: the throughput
        # elasticity approaches 1 (vs ~0 at the roof) — the signal that
        # compute optimization pays off there and nowhere else.
        bound = analyze_sensitivity(
            F1Model.from_components(3.0, 2.891, 60.0, 0.5)
        )
        at_roof = analyze_sensitivity(
            F1Model.from_components(3.0, 2.891, 60.0, 500.0)
        )
        assert bound.elasticity_throughput > 0.7
        assert at_roof.elasticity_throughput < 0.05
        assert bound.elasticity_acceleration < 0.2  # physics barely helps

    def test_elasticities_sum_rule_at_roof(self):
        # At the roof v = sqrt(2 d a): each elasticity is exactly 1/2,
        # so they sum to 1.
        model = F1Model.from_components(10.0, 50.0, 1e5, 1e5)
        report = analyze_sensitivity(model)
        assert report.elasticity_range == pytest.approx(0.5, abs=0.01)
        assert report.elasticity_acceleration == pytest.approx(
            0.5, abs=0.01
        )
