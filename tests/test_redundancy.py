"""Tests for redundancy modeling: payload, reliability, voting."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.redundancy.modular import RedundancyScheme, apply_redundancy
from repro.redundancy.reliability import (
    ReliabilityModel,
    mission_reliability,
    mttf_hours,
    safety_probability,
)
from repro.redundancy.voter import (
    FaultyChannel,
    MajorityVoter,
    VoteOutcome,
    fault_injection_campaign,
)

import numpy as np


class TestSchemes:
    def test_replica_counts(self):
        assert RedundancyScheme.SIMPLEX.replicas == 1
        assert RedundancyScheme.DMR.replicas == 2
        assert RedundancyScheme.TMR.replicas == 3

    def test_fault_tolerance_properties(self):
        assert RedundancyScheme.DMR.tolerates_detected_faults == 1
        assert RedundancyScheme.DMR.tolerates_masked_faults == 0
        assert RedundancyScheme.TMR.tolerates_masked_faults == 1


class TestApplyRedundancy:
    def test_dmr_doubles_compute_payload(self, pelican_tx2):
        design = apply_redundancy(pelican_tx2, RedundancyScheme.DMR)
        assert design.added_payload_g == pytest.approx(
            pelican_tx2.compute.flight_mass_g
        )
        assert design.uav.compute_redundancy == 2

    def test_voter_latency_slows_compute(self, pelican_tx2):
        design = apply_redundancy(
            pelican_tx2, RedundancyScheme.DMR, voter_latency_s=0.001
        )
        assert design.compute_throughput_with_voter(178.0) < 178.0
        zero = apply_redundancy(pelican_tx2, RedundancyScheme.DMR)
        assert zero.compute_throughput_with_voter(178.0) == 178.0

    def test_paper_33pct_velocity_drop(self):
        from repro.compute.platforms import get_platform
        from repro.uav.presets import asctec_pelican

        base = asctec_pelican(get_platform("jetson-tx2"), sensor_range_m=4.5)
        dmr = apply_redundancy(base, RedundancyScheme.DMR)
        drop = 1 - dmr.uav.f1(178.0).roof_velocity / base.f1(178.0).roof_velocity
        assert drop == pytest.approx(0.33, abs=0.005)


class TestReliability:
    MODEL = ReliabilityModel(failure_rate_per_hour=1e-3)

    def test_simplex_exponential(self):
        import math

        r = mission_reliability(RedundancyScheme.SIMPLEX, self.MODEL, 10.0)
        assert r == pytest.approx(math.exp(-0.01))

    def test_tmr_beats_simplex_for_short_missions(self):
        r_simplex = mission_reliability(
            RedundancyScheme.SIMPLEX, self.MODEL, 1.0
        )
        r_tmr = mission_reliability(RedundancyScheme.TMR, self.MODEL, 1.0)
        assert r_tmr > r_simplex

    def test_dmr_completion_worse_but_safety_better(self):
        # DMR completes missions less often (either failure aborts) but
        # is much safer (a single failure is detected, not silent).
        complete_dmr = mission_reliability(
            RedundancyScheme.DMR, self.MODEL, 1.0
        )
        complete_simplex = mission_reliability(
            RedundancyScheme.SIMPLEX, self.MODEL, 1.0
        )
        assert complete_dmr < complete_simplex
        safe_dmr = safety_probability(RedundancyScheme.DMR, self.MODEL, 1.0)
        safe_simplex = safety_probability(
            RedundancyScheme.SIMPLEX, self.MODEL, 1.0
        )
        assert safe_dmr > safe_simplex

    def test_mttf_ordering(self):
        mttf_simplex = mttf_hours(RedundancyScheme.SIMPLEX, self.MODEL)
        mttf_dmr = mttf_hours(RedundancyScheme.DMR, self.MODEL)
        mttf_tmr = mttf_hours(RedundancyScheme.TMR, self.MODEL)
        assert mttf_dmr < mttf_tmr < mttf_simplex
        assert mttf_simplex == pytest.approx(1000.0)
        assert mttf_tmr == pytest.approx(5000.0 / 6.0)

    @given(hours=st.floats(min_value=0.0, max_value=100.0))
    def test_probabilities_are_probabilities(self, hours):
        for scheme in RedundancyScheme:
            for fn in (mission_reliability, safety_probability):
                p = fn(scheme, self.MODEL, hours)
                assert 0.0 <= p <= 1.0


class TestVoter:
    def test_unanimous_correct(self):
        rng = np.random.default_rng(0)
        voter = MajorityVoter(
            [FaultyChannel(0.0, rng) for _ in range(3)]
        )
        action, outcome = voter.vote(correct_action=7)
        assert action == 7
        assert outcome is VoteOutcome.UNANIMOUS

    def test_tmr_masks_single_fault(self):
        rng = np.random.default_rng(0)
        channels = [
            FaultyChannel(0.0, rng),
            FaultyChannel(0.0, rng),
            FaultyChannel(1.0, rng),  # always faulty
        ]
        action, outcome = MajorityVoter(channels).vote(correct_action=7)
        assert action == 7
        assert outcome is VoteOutcome.MASKED

    def test_dmr_detects_divergence(self):
        rng = np.random.default_rng(0)
        channels = [FaultyChannel(0.0, rng), FaultyChannel(1.0, rng)]
        action, outcome = MajorityVoter(channels).vote(
            correct_action=7, safe_action=0
        )
        assert action == 0  # the safe fallback
        assert outcome is VoteOutcome.DETECTED

    def test_campaign_statistics(self):
        tally = fault_injection_campaign(
            replicas=3, fault_probability=0.05, decisions=5000, seed=1
        )
        total = sum(tally.values())
        assert total == 5000
        # With p=0.05 and TMR, masking dominates faults; silent faults
        # (all three agreeing on the same wrong value) are ~impossible.
        assert tally[VoteOutcome.MASKED] > 0
        assert tally[VoteOutcome.SILENT_FAULT] == 0
        assert tally[VoteOutcome.UNANIMOUS] > 0.8 * total

    def test_simplex_faults_are_silent(self):
        tally = fault_injection_campaign(
            replicas=1, fault_probability=0.1, decisions=2000, seed=2
        )
        # One channel: a fault can never be detected or masked.
        assert tally[VoteOutcome.DETECTED] == 0
        assert tally[VoteOutcome.MASKED] == 0
        assert tally[VoteOutcome.SILENT_FAULT] == pytest.approx(
            200, rel=0.25
        )
