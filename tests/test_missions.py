"""Tests for the mission/energy substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InfeasibleDesignError
from repro.missions.endurance import hover_endurance_min
from repro.missions.energy import (
    forward_flight_power_w,
    hover_power_w,
    system_power_w,
)
from repro.missions.mission import Mission, Waypoint, fly_mission
from repro.missions.planner import WaypointGraph
from repro.uav.presets import asctec_pelican, dji_spark, nano_uav


class TestPowerModels:
    def test_hover_power_positive_and_superlinear_in_mass(self):
        p1 = hover_power_w(1000.0, 0.2)
        p2 = hover_power_w(2000.0, 0.2)
        assert p2 > 2 * p1  # T^1.5 scaling

    def test_bigger_disk_is_cheaper(self):
        assert hover_power_w(1000.0, 0.4) < hover_power_w(1000.0, 0.2)

    def test_forward_flight_reduces_to_hover_at_zero(self):
        p_hover = hover_power_w(1000.0, 0.2)
        p_zero = forward_flight_power_w(1000.0, 0.2, 0.0, 0.05)
        assert p_zero == pytest.approx(p_hover)

    def test_induced_power_falls_then_parasitic_rises(self):
        powers = [
            forward_flight_power_w(1500.0, 0.2, v, 0.05)
            for v in (0.0, 3.0, 25.0)
        ]
        assert powers[1] < powers[0]  # translational lift benefit
        assert powers[2] > powers[1]  # drag dominates at speed

    def test_system_power_includes_compute(self, spark_ncs, spark_agx):
        assert system_power_w(spark_agx) - system_power_w(spark_ncs) > 20.0

    @given(v=st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=50)
    def test_forward_power_always_positive(self, v):
        assert forward_flight_power_w(1000.0, 0.2, v, 0.05) > 0.0


class TestEndurance:
    def test_fig2b_bands(self):
        # Nano ~7 min, mini ~30 min in the paper; allow generous bands
        # since the power model is first-principles, not fitted.
        nano = hover_endurance_min(nano_uav())
        mini = hover_endurance_min(asctec_pelican())
        assert 3.0 < nano.endurance_min < 15.0
        assert 10.0 < mini.endurance_min < 45.0
        assert nano.endurance_min < mini.endurance_min

    def test_estimate_fields_consistent(self):
        estimate = hover_endurance_min(dji_spark())
        assert estimate.usable_wh < estimate.battery_wh
        assert estimate.endurance_min == pytest.approx(
            estimate.usable_wh / estimate.hover_power_w * 60.0
        )


class TestWaypointGraph:
    def test_grid_route(self):
        grid = WaypointGraph.grid(4, 4, spacing_m=10.0)
        route = grid.shortest_route("wp-0-0", "wp-3-3")
        assert route[0] == "wp-0-0"
        assert route[-1] == "wp-3-3"
        assert grid.route_length_m(route) == pytest.approx(60.0)

    def test_manual_graph(self):
        graph = WaypointGraph()
        graph.add_waypoint("a", 0, 0)
        graph.add_waypoint("b", 3, 4)
        graph.connect("a", "b")
        assert graph.distance("a", "b") == pytest.approx(5.0)
        assert graph.shortest_route("a", "b") == ["a", "b"]

    def test_no_route_raises(self):
        graph = WaypointGraph()
        graph.add_waypoint("a", 0, 0)
        graph.add_waypoint("b", 1, 1)
        with pytest.raises(ConfigurationError, match="no route"):
            graph.shortest_route("a", "b")

    def test_duplicate_waypoint_rejected(self):
        graph = WaypointGraph()
        graph.add_waypoint("a", 0, 0)
        with pytest.raises(ConfigurationError):
            graph.add_waypoint("a", 1, 1)

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            WaypointGraph.grid(1, 5)


class TestMission:
    def _straight_mission(self, length_m: float = 200.0) -> Mission:
        return Mission(
            name="straight",
            waypoints=[Waypoint(0, 0), Waypoint(length_m, 0)],
        )

    def test_mission_length(self):
        mission = Mission(
            name="L", waypoints=[Waypoint(0, 0), Waypoint(3, 0), Waypoint(3, 4)]
        )
        assert mission.length_m == pytest.approx(7.0)

    def test_needs_two_waypoints(self):
        with pytest.raises(ConfigurationError):
            Mission(name="dot", waypoints=[Waypoint(0, 0)])

    def test_faster_uav_finishes_sooner_and_cheaper(self, spark_ncs, spark_agx):
        mission = self._straight_mission(400.0)
        fast = fly_mission(
            spark_ncs, mission,
            safe_velocity=spark_ncs.f1(150.0).safe_velocity,
            enforce_battery=False,
        )
        slow = fly_mission(
            spark_agx, mission,
            safe_velocity=spark_agx.f1(230.0).safe_velocity,
            enforce_battery=False,
        )
        assert fast.time_s < slow.time_s
        assert fast.energy_wh < slow.energy_wh

    def test_velocity_cap_respected(self, spark_ncs):
        mission = self._straight_mission(400.0)
        result = fly_mission(
            spark_ncs, mission, safe_velocity=5.0,
            v_cruise_desired=3.0, enforce_battery=False,
        )
        assert result.velocity_cap == 3.0
        assert all(leg.cruise_velocity <= 3.0 for leg in result.legs)

    def test_short_leg_triangular_profile(self, spark_ncs):
        # A leg too short to reach cruise speed peaks below the cap.
        mission = self._straight_mission(1.0)
        result = fly_mission(
            spark_ncs, mission, safe_velocity=10.0, enforce_battery=False
        )
        assert result.legs[0].cruise_velocity < 10.0

    def test_battery_enforcement(self, spark_agx):
        mission = Mission(
            name="marathon",
            waypoints=[Waypoint(0, 0), Waypoint(50_000.0, 0)],
        )
        with pytest.raises(InfeasibleDesignError):
            fly_mission(spark_agx, mission, safe_velocity=3.0)

    def test_dwell_adds_hover_cost(self, spark_ncs):
        mission = Mission(
            name="dwell",
            waypoints=[Waypoint(0, 0), Waypoint(100, 0, dwell_s=30.0)],
        )
        no_dwell = Mission(
            name="no-dwell", waypoints=[Waypoint(0, 0), Waypoint(100, 0)]
        )
        with_dwell = fly_mission(
            spark_ncs, mission, safe_velocity=5.0, enforce_battery=False
        )
        without = fly_mission(
            spark_ncs, no_dwell, safe_velocity=5.0, enforce_battery=False
        )
        assert with_dwell.time_s == pytest.approx(without.time_s + 30.0)
        assert with_dwell.energy_wh > without.energy_wh

    def test_from_route(self):
        grid = WaypointGraph.grid(3, 3, spacing_m=10.0)
        route = grid.shortest_route("wp-0-0", "wp-2-2")
        mission = Mission.from_route(grid, route, dwell_s=1.0)
        assert mission.length_m == pytest.approx(40.0)
        assert all(w.dwell_s == 1.0 for w in mission.waypoints)

    def test_average_velocity(self, spark_ncs):
        mission = self._straight_mission(400.0)
        result = fly_mission(
            spark_ncs, mission, safe_velocity=5.0, enforce_battery=False
        )
        assert 0 < result.average_velocity <= 5.0
