"""Tests for the obstacle-stop simulation and the validation harness."""

from __future__ import annotations

import pytest

from repro.errors import CalibrationError, SimulationError
from repro.sim.obstacle_stop import ObstacleStopConfig, run_obstacle_stop
from repro.sim.trials import find_observed_safe_velocity, run_trials
from repro.validation.calibration import fit_acceleration, fit_sensing_range
from repro.validation.flight_tests import (
    predicted_safe_velocity,
    run_validation_campaign,
)


class TestObstacleStop:
    def test_slow_flight_is_safe(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=1.0, f_action_hz=10.0)
        flight = run_obstacle_stop(uav_a, config, seed=0)
        assert not flight.infraction
        assert flight.stop_position_m < flight.obstacle_position_m

    def test_fast_flight_collides(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=3.0, f_action_hz=10.0)
        flight = run_obstacle_stop(uav_a, config, seed=0)
        assert flight.infraction

    def test_reaches_cruise_before_detection(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=1.5, f_action_hz=10.0)
        flight = run_obstacle_stop(uav_a, config, seed=0)
        assert flight.peak_velocity == pytest.approx(1.5, rel=0.05)

    def test_detection_happens_near_sensor_range(self, uav_a):
        config = ObstacleStopConfig(
            cruise_velocity=1.5, f_action_hz=10.0, detection_noise_m=0.0
        )
        flight = run_obstacle_stop(uav_a, config, seed=0)
        idx = int(flight.detect_time_s * 1000)
        position_at_detect = flight.positions[min(idx, len(flight.positions) - 1)]
        distance = flight.obstacle_position_m - position_at_detect
        # Detected within (sensor range - travel of one action+sensor tick).
        assert distance <= uav_a.sensor.range_m
        assert distance >= uav_a.sensor.range_m - 1.5 * (
            1.5 * (1 / 10.0 + 1 / 30.0)
        )

    def test_deterministic_per_seed(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=1.8, f_action_hz=10.0)
        a = run_obstacle_stop(uav_a, config, seed=5)
        b = run_obstacle_stop(uav_a, config, seed=5)
        assert a.stop_position_m == b.stop_position_m

    def test_seed_changes_outcome_details(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=1.8, f_action_hz=10.0)
        a = run_obstacle_stop(uav_a, config, seed=1)
        b = run_obstacle_stop(uav_a, config, seed=2)
        assert a.stop_position_m != b.stop_position_m

    def test_margin_sign_convention(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=1.0, f_action_hz=10.0)
        flight = run_obstacle_stop(uav_a, config, seed=0)
        assert flight.margin_m > 0
        config = ObstacleStopConfig(cruise_velocity=3.0, f_action_hz=10.0)
        flight = run_obstacle_stop(uav_a, config, seed=0)
        assert flight.margin_m < 0

    def test_approach_must_exceed_sensing_range(self, uav_a):
        config = ObstacleStopConfig(
            cruise_velocity=1.0, approach_distance_m=2.0
        )
        with pytest.raises(SimulationError):
            run_obstacle_stop(uav_a, config, seed=0)

    def test_trajectory_arrays_consistent(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=1.5, f_action_hz=10.0)
        flight = run_obstacle_stop(uav_a, config, seed=0)
        assert len(flight.times) == len(flight.positions)
        assert len(flight.times) == len(flight.velocities)
        assert list(flight.positions) == sorted(flight.positions)


class TestTrials:
    def test_trials_counts(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=1.0, f_action_hz=10.0)
        outcome = run_trials(uav_a, config, trials=3, seed=1)
        assert len(outcome.flights) == 3
        assert outcome.safe
        assert outcome.infractions == 0

    def test_any_infraction_is_unsafe(self, uav_a):
        config = ObstacleStopConfig(cruise_velocity=3.0, f_action_hz=10.0)
        outcome = run_trials(uav_a, config, trials=3, seed=1)
        assert outcome.infractions == 3
        assert not outcome.safe

    def test_search_brackets_predicted(self, uav_a):
        predicted = predicted_safe_velocity("A")
        search = find_observed_safe_velocity(
            uav_a, predicted_velocity=predicted, trials=2, seed=3
        )
        observed = search.observed_safe_velocity
        assert 0.6 * predicted <= observed <= predicted
        # the search stops at the first unsafe velocity
        assert not search.outcomes[-1].safe

    def test_search_requires_seed_or_grid(self, uav_a):
        with pytest.raises(SimulationError):
            find_observed_safe_velocity(uav_a)


class TestValidationCampaign:
    def test_error_band_matches_paper(self):
        # The paper reports 5.1-9.5 % optimism; allow a slightly wider
        # band for the simulated stand-in.
        campaign = run_validation_campaign(trials=2, seed=7)
        for variant, row in campaign.items():
            assert 0.0 < row.error_pct <= 15.0, variant
            assert row.observed_velocity < row.predicted_velocity

    def test_predictions_match_paper(self):
        paper = {"A": 2.13, "B": 1.51, "C": 1.58, "D": 1.53}
        for variant, expected in paper.items():
            assert predicted_safe_velocity(variant) == pytest.approx(
                expected, rel=0.06
            )

    def test_subset_of_variants(self):
        campaign = run_validation_campaign(
            trials=1, seed=7, variants=["A"]
        )
        assert list(campaign) == ["A"]


class TestErrorDecomposition:
    def test_ablations_recover_velocity(self, uav_a):
        from repro.validation.error_analysis import decompose_error

        predicted = uav_a.f1(10.0).velocity_at(10.0)
        breakdown = decompose_error(
            uav_a, predicted, trials=1, seed=11
        )
        # The fully idealized simulator must get closest to the model.
        assert breakdown.observed_ideal >= breakdown.observed_full
        assert breakdown.observed_no_lag >= breakdown.observed_full
        assert breakdown.observed_no_derate >= breakdown.observed_full
        assert 0.0 <= breakdown.total_error_pct <= 20.0
        # Contributions are non-negative recoveries.
        assert breakdown.lag_contribution_pct >= 0.0
        assert breakdown.derate_contribution_pct >= 0.0


class TestCalibration:
    def test_fit_acceleration_single_sample(self):
        # v*T + v^2/2a = d  ->  exact recovery.
        from repro.core.safety import safe_velocity

        a_true, d = 0.7264, 3.0
        v = safe_velocity(0.1, d, a_true)
        assert fit_acceleration([(0.1, v)], d) == pytest.approx(
            a_true, rel=1e-6
        )

    def test_fit_acceleration_multi_sample(self):
        from repro.core.safety import safe_velocity

        a_true, d = 2.891, 3.0
        samples = [
            (t, safe_velocity(t, d, a_true)) for t in (0.05, 0.1, 0.5, 1.0)
        ]
        assert fit_acceleration(samples, d) == pytest.approx(
            a_true, rel=1e-4
        )

    def test_fit_sensing_range(self):
        from repro.core.safety import safe_velocity

        a, d_true = 0.7264, 3.0
        samples = [
            (t, safe_velocity(t, d_true, a)) for t in (0.1, 0.2, 0.5)
        ]
        assert fit_sensing_range(samples, a) == pytest.approx(
            d_true, rel=1e-4
        )

    def test_infeasible_sample_rejected(self):
        with pytest.raises(CalibrationError):
            fit_acceleration([(10.0, 2.0)], sensing_range_m=3.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(CalibrationError):
            fit_acceleration([], sensing_range_m=3.0)
        with pytest.raises(CalibrationError):
            fit_sensing_range([], a_max=1.0)
