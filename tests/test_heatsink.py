"""Tests for the Fig. 12 heatsink-mass law."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.heatsink import (
    NO_HEATSINK_TDP_W,
    heatsink_mass_g,
    tdp_for_heatsink_mass,
)
from repro.errors import ConfigurationError


class TestHeatsinkAnchors:
    def test_agx_30w_anchor(self):
        assert heatsink_mass_g(30.0) == pytest.approx(162.0, abs=1.0)

    def test_15w_roughly_halved(self):
        # The paper says "halved to 81 g"; the power-law fit gives 85.
        assert heatsink_mass_g(15.0) == pytest.approx(85.0, abs=1.0)

    def test_fig12_20x_ratio(self):
        # "~20x in TDP -> ~16.2x in heatsink weight"
        ratio = heatsink_mass_g(30.0) / heatsink_mass_g(1.5)
        assert ratio == pytest.approx(16.2, abs=0.1)

    def test_sub_watt_needs_no_heatsink(self):
        assert heatsink_mass_g(0.5) == 0.0
        assert heatsink_mass_g(NO_HEATSINK_TDP_W) == 0.0

    def test_zero_tdp(self):
        assert heatsink_mass_g(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            heatsink_mass_g(-1.0)


class TestInverse:
    @given(tdp=st.floats(min_value=1.5, max_value=200.0))
    def test_roundtrip(self, tdp):
        mass = heatsink_mass_g(tdp)
        assert tdp_for_heatsink_mass(mass) == pytest.approx(tdp, rel=1e-9)

    def test_invalid_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            tdp_for_heatsink_mass(0.0)


class TestMonotonicity:
    @given(
        t1=st.floats(min_value=0.0, max_value=100.0),
        t2=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_monotone_nondecreasing(self, t1, t2):
        lo, hi = sorted((t1, t2))
        assert heatsink_mass_g(lo) <= heatsink_mass_g(hi) + 1e-12

    @given(tdp=st.floats(min_value=1.01, max_value=100.0))
    def test_sublinear_growth(self, tdp):
        # Exponent < 1: doubling TDP less than doubles the heatsink.
        assert heatsink_mass_g(2 * tdp) < 2 * heatsink_mass_g(tdp)
