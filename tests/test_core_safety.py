"""Unit + property tests for the Eq. 4 safety model."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.safety import (
    physics_roof,
    required_action_period,
    required_action_throughput,
    safe_velocity,
    safe_velocity_at_rate,
    stopping_distance,
)
from repro.errors import ConfigurationError, InfeasibleDesignError

REASONABLE_D = st.floats(min_value=0.5, max_value=100.0)
REASONABLE_A = st.floats(min_value=0.05, max_value=100.0)
REASONABLE_T = st.floats(min_value=0.0, max_value=30.0)


class TestSafeVelocity:
    def test_paper_fig5_point_a(self):
        # a=50, d=10, f=1 Hz -> ~10 m/s in the paper.
        assert safe_velocity(1.0, 10.0, 50.0) == pytest.approx(9.1608, abs=1e-3)

    def test_zero_period_gives_roof(self):
        assert safe_velocity(0.0, 10.0, 50.0) == pytest.approx(
            physics_roof(10.0, 50.0)
        )

    def test_accepts_numpy_arrays(self):
        t = np.array([0.1, 1.0, 5.0])
        v = safe_velocity(t, 10.0, 50.0)
        assert isinstance(v, np.ndarray)
        assert v.shape == t.shape
        assert np.all(np.diff(v) < 0)  # slower decisions, lower velocity

    def test_scalar_input_returns_float(self):
        assert isinstance(safe_velocity(1.0, 10.0, 50.0), float)

    def test_negative_period_rejected(self):
        with pytest.raises(InfeasibleDesignError):
            safe_velocity(-0.1, 10.0, 50.0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            safe_velocity(1.0, 0.0, 50.0)

    def test_invalid_acceleration_rejected(self):
        with pytest.raises(ConfigurationError):
            safe_velocity(1.0, 10.0, -1.0)

    @given(t=REASONABLE_T, d=REASONABLE_D, a=REASONABLE_A)
    def test_velocity_below_roof(self, t, d, a):
        assert safe_velocity(t, d, a) <= physics_roof(d, a) + 1e-9

    @given(d=REASONABLE_D, a=REASONABLE_A,
           t1=REASONABLE_T, t2=REASONABLE_T)
    def test_monotone_decreasing_in_period(self, d, a, t1, t2):
        lo, hi = sorted((t1, t2))
        assert safe_velocity(lo, d, a) >= safe_velocity(hi, d, a) - 1e-12

    @given(t=REASONABLE_T, d=REASONABLE_D,
           a1=REASONABLE_A, a2=REASONABLE_A)
    def test_monotone_increasing_in_acceleration(self, t, d, a1, a2):
        lo, hi = sorted((a1, a2))
        assert safe_velocity(t, d, lo) <= safe_velocity(t, d, hi) + 1e-12

    @given(t=REASONABLE_T, a=REASONABLE_A,
           d1=REASONABLE_D, d2=REASONABLE_D)
    def test_monotone_increasing_in_range(self, t, a, d1, d2):
        lo, hi = sorted((d1, d2))
        assert safe_velocity(t, lo, a) <= safe_velocity(t, hi, a) + 1e-12

    @given(t=st.floats(min_value=0.001, max_value=30.0),
           d=REASONABLE_D, a=REASONABLE_A)
    @settings(max_examples=200)
    def test_stopping_identity(self, t, d, a):
        # Eq. 4 is exactly "stopping distance equals sensing range".
        v = safe_velocity(t, d, a)
        assert stopping_distance(v, t, a) == pytest.approx(d, rel=1e-9)


class TestPhysicsRoof:
    def test_fig5_value(self):
        assert physics_roof(10.0, 50.0) == pytest.approx(
            math.sqrt(1000.0)
        )

    @given(d=REASONABLE_D, a=REASONABLE_A)
    def test_roof_formula(self, d, a):
        assert physics_roof(d, a) == pytest.approx(math.sqrt(2 * d * a))


class TestInverse:
    def test_closed_form(self):
        # T = d/v - v/(2a)
        assert required_action_period(2.0, 3.0, 0.8) == pytest.approx(
            3.0 / 2.0 - 2.0 / 1.6
        )

    @given(d=REASONABLE_D, a=REASONABLE_A,
           fraction=st.floats(min_value=0.05, max_value=0.99))
    @settings(max_examples=200)
    def test_roundtrip_through_eq4(self, d, a, fraction):
        v_target = fraction * physics_roof(d, a)
        t = required_action_period(v_target, d, a)
        assert safe_velocity(max(t, 0.0), d, a) == pytest.approx(
            v_target, rel=1e-6
        )

    def test_roof_velocity_infeasible(self):
        roof = physics_roof(10.0, 50.0)
        with pytest.raises(InfeasibleDesignError):
            required_action_period(roof, 10.0, 50.0)
        with pytest.raises(InfeasibleDesignError):
            required_action_period(roof * 1.1, 10.0, 50.0)

    def test_throughput_inverse(self):
        f = required_action_throughput(2.0, 3.0, 0.8)
        assert safe_velocity_at_rate(f, 3.0, 0.8) == pytest.approx(2.0)


class TestRateForm:
    def test_rate_and_period_agree(self):
        assert safe_velocity_at_rate(10.0, 3.0, 0.8) == pytest.approx(
            safe_velocity(0.1, 3.0, 0.8)
        )

    def test_zero_rate_rejected(self):
        with pytest.raises(InfeasibleDesignError):
            safe_velocity_at_rate(0.0, 3.0, 0.8)

    def test_array_rate(self):
        f = np.array([1.0, 10.0, 100.0])
        v = safe_velocity_at_rate(f, 10.0, 50.0)
        assert np.all(np.diff(v) > 0)


class TestStoppingDistance:
    def test_pure_braking(self):
        # No reaction delay: v^2 / (2a).
        assert stopping_distance(2.0, 0.0, 1.0) == pytest.approx(2.0)

    def test_reaction_adds_linear_term(self):
        assert stopping_distance(2.0, 0.5, 1.0) == pytest.approx(3.0)

    def test_zero_velocity(self):
        assert stopping_distance(0.0, 1.0, 1.0) == 0.0
