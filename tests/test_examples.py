"""Smoke tests: the example scripts run cleanly against the public API.

Each fast example executes in-process (``runpy``); the two slow flight
campaigns are exercised indirectly through their library entry points
elsewhere in the suite.
"""

from __future__ import annotations

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples"
)

FAST_EXAMPLES = (
    "quickstart.py",
    "compute_selection.py",
    "algorithm_tradeoffs.py",
    "redundancy_analysis.py",
    "full_system_dse.py",
    "mission_planning.py",
    "design_tuning.py",
    "spa_pipeline_demo.py",
)

SLOW_EXAMPLES = ("flight_validation.py", "wind_robustness.py")


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # SVG artifacts land in tmp
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_all_examples_enumerated():
    """Every shipped example is either smoke-tested or listed slow."""
    shipped = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    assert shipped == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)


def test_quickstart_mentions_key_outputs(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, "quickstart.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "knee" in out
    assert "Skyline analysis" in out
    assert (tmp_path / "quickstart_roofline.svg").exists()
