"""Fixture: a file-level suppression covers every occurrence."""
# reprolint: disable-file=RPL002


def first():
    raise ValueError("suppressed by the file-level comment")


def second():
    raise RuntimeError("also suppressed")
