"""Other half of the cycle: imports alpha back (and a missing name).

``never_defined`` resolves nowhere — the cycle-safe resolver must
return "missing" for it instead of recursing forever, so RPL009 flags
exactly that import and nothing else.
"""

from .alpha import ALPHA_CONST, never_defined  # noqa: F401


def beta_value():
    return ALPHA_CONST
