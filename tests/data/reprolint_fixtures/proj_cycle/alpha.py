"""One half of the cycle: imports beta, re-exports its symbol."""

from .beta import beta_value

ALPHA_CONST = 1


def alpha_value():
    return beta_value() + ALPHA_CONST
