"""Mini-project with an import cycle: resolution must not hang."""
