"""Mini-project reverting the PR-4 DEFAULT_CACHE fork-inheritance bug.

``engine`` owns a module-level cache mutated by parent-side code;
``executor`` forks a process pool whose workers read it — with no
initializer reset, no lock, no fork-safe marker.  RPL007 must flag
``engine.DEFAULT_CACHE``.
"""
