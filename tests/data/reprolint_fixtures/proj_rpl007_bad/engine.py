"""The cache owner: parent-side evaluation populates DEFAULT_CACHE."""

DEFAULT_CACHE = {}


def evaluate_matrix(rows, cache=DEFAULT_CACHE):
    out = []
    for row in rows:
        key = str(row)
        if key not in cache:
            cache[key] = row * 2
        out.append(cache[key])
    return out
