"""The pool: workers re-enter evaluate_matrix and read the stale cache."""

from concurrent.futures import ProcessPoolExecutor

from .engine import evaluate_matrix


def _evaluate_shard(rows):
    return evaluate_matrix(rows)


def run_sharded(shards):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(_evaluate_shard, shard) for shard in shards]
    return [future.result() for future in futures]
