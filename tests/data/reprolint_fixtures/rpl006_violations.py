"""RPL006 fixture: unpicklable callables submitted to pools."""


def module_level_work(row):
    return row * 2


def fan_out(pool, rows):
    futures = [pool.submit(lambda r=row: r * 2) for row in rows]  # lambda

    def local_work(row):  # closure over fan_out's frame
        return row * 2

    futures.append(pool.submit(local_work, rows[0]))
    futures.append(pool.submit(module_level_work, rows[0]))  # fine
    return futures


def mapped(executor, shards):
    return executor.map(lambda shard: shard.stop, shards)  # lambda


def clean(pool, shards):
    return [pool.submit(module_level_work, shard) for shard in shards]
