"""RPL001 clean fixture: suffix arithmetic within one dimension group."""


def mass_budget(base_mass_g, payload_g, battery_mass_kg):
    total_g = base_mass_g + payload_g
    heavier_g = total_g + battery_mass_kg * 1000.0  # converted expression
    return heavier_g


def thrust_check(thrust_g, total_mass_g):
    # Gram-force vs grams is one dimension group by repo convention.
    return thrust_g > total_mass_g


def periods(start_s, elapsed_ms):
    # Converted through a scaling expression, not a bare name: fine.
    return start_s + elapsed_ms / 1000.0


def rates(f_sensor_hz, f_compute_hz):
    if f_sensor_hz <= f_compute_hz:
        return f_sensor_hz
    return f_compute_hz
