"""RPL001 violating fixture: arithmetic mixing dimension groups."""


def bad_add(mass_g, power_w):
    return mass_g + power_w  # mass + power


def bad_sub(range_m, time_s):
    return range_m - time_s  # length - time


def bad_compare(rate_hz, latency_s):
    return rate_hz > latency_s  # rate vs time


def bad_assign(energy_wh):
    total_g = energy_wh  # mass name <- energy name
    return total_g


def bad_augmented(total_mass_g, tdp_w):
    total_mass_g += tdp_w  # mass += power
    return total_mass_g


def suppressed_mix(mass_g, power_w):
    return mass_g + power_w  # reprolint: disable=RPL001
