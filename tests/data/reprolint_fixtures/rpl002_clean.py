"""RPL002 clean fixture: taxonomy errors naming the offending field."""

from repro.errors import ConfigurationError, SimulationError


def validate(samples):
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples!r}")
    return samples


def advance(dt_s):
    if dt_s <= 0:
        raise SimulationError(f"dt_s must be > 0, got {dt_s!r}")
    return dt_s


def passthrough():
    try:
        validate(0)
    except ConfigurationError:
        raise  # bare re-raise is fine
