"""RPL005 fixture: unguarded vs guarded optional-tracer use."""


def unguarded(matrix, tracer=None):
    tracer.counter("rows").add(len(matrix))  # crashes untraced runs
    return matrix


def guarded(matrix, tracer=None):
    if tracer is not None:
        tracer.counter("rows").add(len(matrix))
    started = tracer.now() if tracer is not None else 0.0
    if tracer is not None and len(matrix):
        tracer.gauge("rows_per_s").set(float(len(matrix)))
    return matrix, started


def early_return(matrix, tracer=None):
    if tracer is None:
        return matrix
    tracer.counter("rows").add(len(matrix))  # tracer proven live
    return matrix


def wrong_branch(matrix, tracer=None):
    if tracer is None:
        tracer.counter("rows").add(1)  # tracer IS None here
    return matrix


def rebound(task):
    tracer = task.get("tracer")
    tracer.span("compile")  # may still be None
    tracer = Tracer()
    tracer.span("ok")  # rebound to a live tracer
    return tracer


class Tracer:
    def span(self, name):
        return name
