"""RPL009 violating fixture: export drift and a dead private helper."""

__all__ = ["compute_span", "vanished_symbol"]


def compute_span(width_m, height_m):
    return width_m * height_m


def _forgotten_helper(values):
    return sum(values) / len(values)
