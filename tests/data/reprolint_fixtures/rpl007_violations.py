"""RPL007 violating fixture: fork-inherited mutable global, no reset.

Single-file rendition of the PR-4 ``DEFAULT_CACHE`` bug: the parent
populates a module-level cache, forked pool workers read it, and
nothing resets or locks it.
"""

from concurrent.futures import ProcessPoolExecutor

RESULT_CACHE = {}


def evaluate(row, cache=RESULT_CACHE):
    key = str(row)
    if key not in cache:
        cache[key] = row * 2
    return cache[key]


def run_shard(rows):
    return [evaluate(row) for row in rows]


def fan_out(shards):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_shard, shard) for shard in shards]
    return [future.result() for future in futures]
