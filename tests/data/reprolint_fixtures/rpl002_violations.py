"""RPL002 violating fixture: bare stdlib exceptions."""


def bad_value(samples):
    if samples < 1:
        raise ValueError("samples must be >= 1")
    return samples


def bad_type(name):
    if not isinstance(name, str):
        raise TypeError("name must be a string")
    return name


def bad_runtime():
    raise RuntimeError("unexpected state")


def bad_generic():
    raise Exception("boom")


def suppressed():
    # Suppression on the line above the raise also applies.
    # reprolint: disable=RPL002
    raise ValueError("tolerated here")
