"""RPL008 violating fixture: unit suffixes lost across call boundaries."""


def wait_for(timeout_ms):
    return timeout_ms / 1000.0


def climb_rate(height_m, duration_s):
    return height_m / duration_s


def total_mass_g(frame_g, battery_g):
    return frame_g + battery_g


def bad_scale(hover_time_s):
    # time passed at the wrong scale: seconds into a *_ms parameter.
    return wait_for(hover_time_s)


def bad_dimension(total_wh, distance_km):
    # energy passed where the callee expects a length.
    return climb_rate(total_wh, duration_s=10.0)


def bad_keyword(ascent_m, hover_power_w):
    # keyword argument with a mismatched dimension.
    return climb_rate(ascent_m, duration_s=hover_power_w)


def bad_return(frame_g, battery_g):
    # *_g-returning callee assigned to a *_kg name.
    payload_kg = total_mass_g(frame_g, battery_g)
    return payload_kg
