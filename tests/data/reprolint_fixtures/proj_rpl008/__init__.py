"""Mini-project for RPL008: unit suffixes crossing module boundaries.

``flight`` calls ``timing`` through this package's re-export, passing
millisecond values into second-suffixed parameters (and misbinding a
return).  RPL008 must flag every call site in ``flight``.
"""

from .timing import integrate_path, step_duration_s

__all__ = ["integrate_path", "step_duration_s"]
