"""Second-suffixed callee signatures: the contract RPL008 enforces."""


def integrate_path(distance_m, dt_s):
    return distance_m / dt_s


def step_duration_s(n_steps, total_time_s):
    return total_time_s / n_steps
