"""Caller module: millisecond values leak into *_s parameters."""

from . import integrate_path, step_duration_s


def bad_positional(path_m, frame_time_ms):
    # _ms value into the _s positional parameter, across the package
    # boundary and through the __init__ re-export.
    return integrate_path(path_m, frame_time_ms)


def bad_keyword(n_frames, mission_time_ms):
    return step_duration_s(n_frames, total_time_s=mission_time_ms)


def bad_return(n_frames, mission_time_s):
    # *_s-returning callee bound to a *_ms name.
    frame_ms = step_duration_s(n_frames, mission_time_s)
    return frame_ms
