"""RPL003 clean fixture: a miniature versioned wire builder."""

MANIFEST_VERSION = 1

_MANIFEST_FIELDS = ("kind", "digest", "total_rows")


def shard_manifest_to_dict(manifest):
    """Serialize a manifest (fixture twin of the real builder)."""
    data = {"version": MANIFEST_VERSION}
    for name in _MANIFEST_FIELDS:
        data[name] = getattr(manifest, name)
    return data
