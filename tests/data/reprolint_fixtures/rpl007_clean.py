"""RPL007 clean fixture: every escape hatch in one module.

``RESULT_CACHE`` is reset by the worker initializer, ``SHARED_TOTALS``
is mutated only under a module-level lock, and ``HANDLER_REGISTRY`` is
marked fork-safe (populated at import time only).
"""

import threading
from concurrent.futures import ProcessPoolExecutor

RESULT_CACHE = {}
SHARED_TOTALS = {}
_TOTALS_LOCK = threading.Lock()
HANDLER_REGISTRY = {}  # reprolint: fork-safe


def register_handler(name, handler):
    # Only safe because registration happens at import time, before any
    # pool exists — which is what the fork-safe marker asserts.
    HANDLER_REGISTRY[name] = handler


def clear_result_cache():
    RESULT_CACHE.clear()


def _init_worker():
    clear_result_cache()


def record_total(key, value):
    with _TOTALS_LOCK:
        SHARED_TOTALS[key] = value


def evaluate(row, cache=RESULT_CACHE):
    key = str(row)
    if key not in cache:
        cache[key] = row * 2
    record_total(key, cache[key])
    return HANDLER_REGISTRY.get("post", lambda value: value)(cache[key])


def run_shard(rows):
    return [evaluate(row) for row in rows]


def fan_out(shards):
    with ProcessPoolExecutor(initializer=_init_worker) as pool:
        futures = [pool.submit(run_shard, shard) for shard in shards]
    return [future.result() for future in futures]
