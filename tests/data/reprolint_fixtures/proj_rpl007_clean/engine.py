"""The cache owner, plus the reset hook the initializer calls."""

DEFAULT_CACHE = {}


def clear_default_cache():
    DEFAULT_CACHE.clear()


def evaluate_matrix(rows, cache=DEFAULT_CACHE):
    out = []
    for row in rows:
        key = str(row)
        if key not in cache:
            cache[key] = row * 2
        out.append(cache[key])
    return out
