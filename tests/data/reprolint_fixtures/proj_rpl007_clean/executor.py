"""The pool, with the PR-4 fix: initializer wipes the inherited cache."""

from concurrent.futures import ProcessPoolExecutor

from .engine import clear_default_cache, evaluate_matrix


def _init_worker():
    clear_default_cache()


def _evaluate_shard(rows):
    return evaluate_matrix(rows)


def run_sharded(shards):
    with ProcessPoolExecutor(initializer=_init_worker) as pool:
        futures = [pool.submit(_evaluate_shard, shard) for shard in shards]
    return [future.result() for future in futures]
