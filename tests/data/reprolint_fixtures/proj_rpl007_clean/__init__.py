"""The fixed shape of proj_rpl007_bad: an initializer resets the cache."""
