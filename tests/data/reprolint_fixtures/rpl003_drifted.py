"""RPL003 violating fixture: builder changed, version NOT bumped."""

MANIFEST_VERSION = 1

_MANIFEST_FIELDS = ("kind", "digest", "total_rows")


def shard_manifest_to_dict(manifest):
    """Serialize a manifest — now with an extra key, same version."""
    data = {"version": MANIFEST_VERSION, "hostname": manifest.hostname}
    for name in _MANIFEST_FIELDS:
        data[name] = getattr(manifest, name)
    return data
