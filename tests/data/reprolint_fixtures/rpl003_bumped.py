"""RPL003 fixture: builder changed AND version bumped (stale snapshot)."""

MANIFEST_VERSION = 2

_MANIFEST_FIELDS = ("kind", "digest", "total_rows")


def shard_manifest_to_dict(manifest):
    """Serialize a manifest — extra key, version bumped."""
    data = {"version": MANIFEST_VERSION, "hostname": manifest.hostname}
    for name in _MANIFEST_FIELDS:
        data[name] = getattr(manifest, name)
    return data
