"""RPL004 violating fixture (analyzed as a batch hot-path module)."""

import numpy as np


def per_row_kernel(values, out):
    for index in range(len(values)):  # statement-level loop
        out[index] = values[index] * 2.0  # writes into a parameter
    return out


def draining_loop(queue):
    while queue:  # statement-level loop
        queue.pop()
    return queue


def in_place_sort(column):
    column.sort()  # mutates the caller's array
    return column


def clean_kernel(a, b):
    # Whole-column expressions and comprehensions are fine.
    scaled = np.sqrt(2.0 * a * b)
    names = [str(x) for x in (1, 2, 3)]
    return scaled, names
