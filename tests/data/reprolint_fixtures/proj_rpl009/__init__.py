"""Mini-project for RPL009: every drift variant in one package.

The ``__init__`` re-exports a symbol ``core`` no longer defines, its
``__all__`` lists a ghost, and ``core`` keeps a dead private helper.
"""

from .core import compute_area_m2, removed_long_ago

__all__ = ["compute_area_m2", "ghost_export"]
