"""The drifted module: exports shrank, a private helper went dead."""


def compute_area_m2(width_m, height_m):
    return width_m * height_m


def _stale_normalizer(values):
    total = sum(values)
    return [value / total for value in values]
