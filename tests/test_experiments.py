"""Integration tests: every experiment runs and reproduces the paper's
headline quantities (the shape invariants)."""

from __future__ import annotations

import os

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import run_all, write_report

FAST_EXPERIMENTS = sorted(set(EXPERIMENTS) - {"fig07"})


@pytest.fixture(scope="module")
def all_fast_results():
    return {eid: run_experiment(eid) for eid in FAST_EXPERIMENTS}


class TestRegistry:
    def test_all_ids_present(self):
        expected = {
            "fig02b", "fig05", "fig07", "fig09", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "table1", "table2",
            "table3",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        from repro.errors import UnknownComponentError

        with pytest.raises(UnknownComponentError):
            run_experiment("fig99")


class TestExperimentContracts:
    def test_results_well_formed(self, all_fast_results):
        for eid, result in all_fast_results.items():
            assert isinstance(result, ExperimentResult)
            assert result.experiment_id == eid
            assert result.table_rows, eid
            assert result.comparisons, eid
            text = result.summary_text()
            assert eid in text

    def test_tables_render(self, all_fast_results):
        for result in all_fast_results.values():
            assert "|" in result.data_table()
            assert "paper" in result.comparison_table()


class TestShapeInvariants:
    """The paper's qualitative claims, asserted quantitatively."""

    def test_fig05_anchors(self, all_fast_results):
        comparisons = {
            c.quantity: c for c in all_fast_results["fig05"].comparisons
        }
        assert "31.6" in comparisons["asymptotic velocity (T->0)"].measured
        assert "98.0" in comparisons["knee-point throughput"].measured

    def test_fig09_flat_tail(self, all_fast_results):
        comparisons = {
            c.quantity: c for c in all_fast_results["fig09"].comparisons
        }
        drop_cd = comparisons["C -> D velocity drop (+50 g)"].measured
        assert float(drop_cd.split("%")[0]) < 3.0

    def test_fig11_ncs_wins(self, all_fast_results):
        rows = {r[0]: r for r in all_fast_results["fig11"].table_rows}
        roof = lambda name: float(rows[name][4])
        assert roof("intel-ncs") > roof("jetson-agx-30w")
        assert roof("jetson-agx-15w") == pytest.approx(
            1.75 * roof("jetson-agx-30w"), rel=0.01
        )

    def test_fig12_anchor(self, all_fast_results):
        comparisons = {
            c.quantity: c for c in all_fast_results["fig12"].comparisons
        }
        assert "161.8" in comparisons["heatsink @ 30 W"].measured

    def test_fig13_anchors(self, all_fast_results):
        comparisons = {
            c.quantity: c for c in all_fast_results["fig13"].comparisons
        }
        assert "43.0" in comparisons["knee-point throughput"].measured
        assert "2.30" in comparisons["SPA safe velocity"].measured
        assert "39.1" in comparisons[
            "SPA speedup needed to reach the knee"
        ].measured

    def test_fig14_dmr_drop(self, all_fast_results):
        comparisons = {
            c.quantity: c for c in all_fast_results["fig14"].comparisons
        }
        assert "33.0%" in comparisons["safe-velocity drop from DMR"].measured

    def test_fig15_raspi_targets(self, all_fast_results):
        comparisons = {
            c.quantity: c for c in all_fast_results["fig15"].comparisons
        }
        assert "3.3x" in comparisons[
            "Ras-Pi DroNet speedup needed (Pelican)"
        ].measured
        assert "110x" in comparisons[
            "Ras-Pi TrailNet speedup needed (Pelican)"
        ].measured
        assert "660x" in comparisons[
            "Ras-Pi CAD2RL speedup needed (Pelican)"
        ].measured

    def test_fig16_accelerator_targets(self, all_fast_results):
        comparisons = {
            c.quantity: c for c in all_fast_results["fig16"].comparisons
        }
        assert "26.0" in comparisons["nano-UAV knee"].measured
        assert "4.33x" in comparisons["PULP speedup needed"].measured
        assert "21.0x" in comparisons[
            "Navion pipeline speedup needed"
        ].measured

    def test_table1_payloads(self, all_fast_results):
        rows = all_fast_results["table1"].table_rows
        payloads = {row[0]: float(row[4]) for row in rows}
        assert payloads == {
            "UAV-A": 590.0, "UAV-B": 800.0,
            "UAV-C": 640.0, "UAV-D": 690.0,
        }


class TestFig07:
    """The only slow experiment: run once with a reduced campaign."""

    def test_validation_errors_in_band(self):
        from repro.experiments import fig07

        result = fig07.run(trials=1, seed=7)
        for row in result.table_rows:
            error = float(row[3].rstrip("%"))
            assert 0.0 < error <= 15.0

    def test_trajectory_figure_marks_infractions(self):
        from repro.experiments.fig07 import trajectory_sweep

        plot = trajectory_sweep()
        labels = [series.label for series in plot.series]
        assert any("infraction" in label for label in labels)
        assert any("infraction" not in label for label in labels)


class TestRunner:
    def test_run_all_subset_and_report(self, tmp_path):
        results = run_all(["fig05", "table2"])
        report = write_report(results, str(tmp_path))
        assert os.path.exists(report)
        content = open(report).read()
        assert "fig05" in content and "table2" in content
        assert os.path.exists(tmp_path / "fig05.svg")

    def test_cli_main(self, tmp_path, capsys):
        from repro.experiments.runner import main

        code = main(
            ["--outdir", str(tmp_path), "--only", "fig12", "table3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[fig12] done" in out
        assert os.path.exists(tmp_path / "REPORT.md")
        assert os.path.exists(tmp_path / "fig12.svg")

    def test_run_all_empty_selection_rejected(self):
        # Regression: run_all([]) used to fall through a falsy `or`
        # and silently run every experiment.
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="empty"):
            run_all(experiment_ids=[])

    def test_cli_empty_only_is_an_error(self, capsys):
        # Regression: `repro-experiments --only` (zero ids) used to run
        # all experiments; it must be a clear CLI error instead.
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--only"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "at least one experiment id" in err
