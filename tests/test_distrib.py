"""repro.distrib: leases, the distributed executor, workers, CLI.

The load-bearing property throughout: a distributed study's merged
result is **bitwise identical** to the single-host run — regardless of
worker count, chunking, join order, crashes, or lease-layer damage —
because shard records (not leases) are the source of truth and shard
evaluation is deterministic.  Leases are tested separately as the
efficiency layer they are: every failure path must degrade to
"claimable", never to a wedged shard or a crash.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import replace

import pytest

from repro.batch.executor import CheckpointStore, iter_chunks
from repro.distrib import (
    DEFAULT_LEASE_TTL_S,
    DistributedExecutor,
    LeaseRecord,
    LeaseStore,
    default_worker_id,
    open_study,
    publish_spec,
    resolve_study_manifest,
    run_worker,
)
from repro.distrib.executor import INJECT_DELAY_ENV
from repro.errors import (
    ConfigurationError,
    LeaseConflictError,
    StaleLeaseError,
)
from repro.io.serialization import (
    batch_results_equal,
    lease_record_from_dict,
    lease_record_to_dict,
)
from repro.obs import Tracer
from repro.skyline.cli import main as cli_main
from repro.study import DesignSpec, StudySpec, run_study

DIGEST = "a" * 32


def _spec(n_rows: int = 16) -> StudySpec:
    values = [1.0 + 0.25 * i for i in range(n_rows)]
    return StudySpec(
        design=DesignSpec.knob_axes(axes={"compute_tdp_w": values})
    )


def _store(tmp_path, owner="w1", ttl=30.0, digest=DIGEST, tracer=None):
    return LeaseStore(
        tmp_path, digest, owner, lease_ttl_s=ttl, tracer=tracer
    )


def _expire(store: LeaseStore, index: int) -> None:
    """Backdate a lease's mtime past its ttl (a silent worker)."""
    path = store.lease_path(index)
    past = path.stat().st_mtime - store.lease_ttl_s - 60.0
    os.utime(path, (past, past))


# ---------------------------------------------------------------------------
# lease record wire format
# ---------------------------------------------------------------------------
class TestLeaseRecordWire:
    def test_round_trip(self):
        record = LeaseRecord(
            spec_digest=DIGEST,
            shard_index=3,
            owner="host-a-12041",
            lease_ttl_s=30.0,
            heartbeats=7,
        )
        data = lease_record_to_dict(record)
        assert data["version"] == 1
        assert data["kind"] == "lease"
        assert lease_record_from_dict(data) == record

    def test_round_trips_through_json(self):
        record = LeaseRecord(DIGEST, 0, "w", 2.5, 0)
        text = json.dumps(lease_record_to_dict(record))
        assert lease_record_from_dict(json.loads(text)) == record


# ---------------------------------------------------------------------------
# the lease store
# ---------------------------------------------------------------------------
class TestLeaseClaim:
    def test_claim_release_lifecycle(self, tmp_path):
        store = _store(tmp_path)
        record = store.try_claim(4)
        assert record is not None
        assert record.owner == "w1" and record.shard_index == 4
        assert store.lease_path(4).exists()
        assert store.holder(4) == record
        assert store.active() == {4: record}
        assert store.release(4) is True
        assert not store.lease_path(4).exists()
        assert store.release(4) is False  # idempotent

    def test_live_lease_blocks_other_workers(self, tmp_path):
        _store(tmp_path, owner="w1").try_claim(0)
        other = _store(tmp_path, owner="w2")
        assert other.try_claim(0) is None
        with pytest.raises(LeaseConflictError, match="'w1'") as exc:
            other.claim(0)
        assert exc.value.shard_index == 0
        assert exc.value.owner == "w1"

    def test_expired_lease_is_stolen_with_a_warning(self, tmp_path):
        dead = _store(tmp_path, owner="dead", ttl=5.0)
        dead.try_claim(2)
        _expire(dead, 2)
        tracer = Tracer()
        thief = _store(tmp_path, owner="thief", tracer=tracer)
        with pytest.warns(RuntimeWarning, match="'dead'"):
            record = thief.try_claim(2)
        assert record is not None and record.owner == "thief"
        counters = tracer.counters_snapshot()
        assert counters["distrib.leases.stolen"] == 1
        assert counters["distrib.leases.claimed"] == 1

    def test_steal_honors_the_holders_ttl_not_the_stealers(self, tmp_path):
        # Holder declared a long ttl; an impatient stealer with a short
        # ttl must still respect it while the holder is live.
        _store(tmp_path, owner="w1", ttl=3600.0).try_claim(1)
        thief = _store(tmp_path, owner="w2", ttl=0.001)
        assert thief.try_claim(1) is None

    def test_concurrent_claims_one_winner(self, tmp_path):
        n_threads, winners = 8, []
        barrier = threading.Barrier(n_threads)

        def contend(i: int) -> None:
            store = _store(tmp_path, owner=f"w{i}")
            barrier.wait()
            if store.try_claim(0) is not None:
                winners.append(i)

        threads = [
            threading.Thread(target=contend, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1

    def test_concurrent_steals_one_winner(self, tmp_path):
        dead = _store(tmp_path, owner="dead", ttl=1.0)
        dead.try_claim(0)
        _expire(dead, 0)
        n_threads, winners = 8, []
        barrier = threading.Barrier(n_threads)

        def contend(i: int) -> None:
            store = _store(tmp_path, owner=f"w{i}")
            barrier.wait()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                if store.try_claim(0) is not None:
                    winners.append(i)

        threads = [
            threading.Thread(target=contend, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One thread retires the expired lease and wins; late stealers
        # lose the tombstone rename or the fresh create.  Either way
        # exactly one lease file remains and it names one owner.
        assert len(winners) == 1
        holder = _store(tmp_path, owner="observer").holder(0)
        assert holder is not None
        assert holder.owner == f"w{winners[0]}"

    def test_validation_errors(self, tmp_path):
        with pytest.raises(ConfigurationError, match="digest"):
            LeaseStore(tmp_path, "", "w1")
        with pytest.raises(ConfigurationError, match="path separator"):
            LeaseStore(tmp_path, DIGEST, "bad/owner")
        with pytest.raises(ConfigurationError, match="path separator"):
            LeaseStore(tmp_path, DIGEST, "")
        with pytest.raises(ConfigurationError, match="lease_ttl_s"):
            LeaseStore(tmp_path, DIGEST, "w1", lease_ttl_s=0.0)


class TestLeaseCorruption:
    """Satellite: damaged lease files are claimable, never fatal."""

    @pytest.mark.parametrize(
        "payload",
        [
            "",  # truncated to nothing
            "{\"version\": 1, \"kind\": \"lea",  # torn mid-write
            "not json at all\n",
            "[1, 2, 3]\n",  # wrong shape
            json.dumps({"version": 99, "kind": "lease"}),  # future version
            json.dumps(
                {
                    "version": 1,
                    "kind": "lease",
                    "spec_digest": DIGEST,
                    "shard_index": 0,
                    "owner": "w9",
                    # lease_ttl_s missing, heartbeats missing
                }
            ),
        ],
        ids=["empty", "torn", "garbage", "non-mapping", "future", "missing"],
    )
    def test_corrupt_lease_is_claimed_with_a_warning(self, tmp_path, payload):
        tracer = Tracer()
        store = _store(tmp_path, tracer=tracer)
        store.lease_path(0).write_text(payload, encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt or torn"):
            record = store.try_claim(0)
        assert record is not None and record.owner == "w1"
        assert tracer.counters_snapshot()["distrib.leases.corrupt"] == 1
        # The fresh lease is valid again.
        assert store.holder(0) == record

    def test_foreign_study_lease_is_corrupt_not_honored(self, tmp_path):
        _store(tmp_path, digest="b" * 32, owner="other").try_claim(0)
        store = _store(tmp_path, digest=DIGEST)
        with pytest.warns(RuntimeWarning, match="corrupt or torn"):
            assert store.try_claim(0) is not None

    def test_corrupt_lease_never_crashes_reads(self, tmp_path):
        store = _store(tmp_path)
        store.lease_path(1).write_text("\x00\x01garbage", encoding="utf-8")
        assert store.holder(1) is None
        assert store.active() == {}


class TestHeartbeatAndRelease:
    def test_heartbeat_bumps_count_and_mtime(self, tmp_path):
        store = _store(tmp_path)
        store.try_claim(0)
        path = store.lease_path(0)
        before = path.stat().st_mtime
        os.utime(path, (before - 10.0, before - 10.0))
        refreshed = store.heartbeat(0)
        assert refreshed.heartbeats == 1
        assert path.stat().st_mtime > before - 10.0
        body = lease_record_from_dict(
            json.loads(path.read_text(encoding="utf-8"))
        )
        assert body.heartbeats == 1

    def test_heartbeat_after_vanish_is_stale(self, tmp_path):
        store = _store(tmp_path)
        store.try_claim(0)
        store.lease_path(0).unlink()
        with pytest.raises(StaleLeaseError, match="vanished"):
            store.heartbeat(0)

    def test_heartbeat_after_steal_is_stale(self, tmp_path):
        victim = _store(tmp_path, owner="victim", ttl=1.0)
        victim.try_claim(0)
        _expire(victim, 0)
        with pytest.warns(RuntimeWarning):
            _store(tmp_path, owner="thief").try_claim(0)
        with pytest.raises(StaleLeaseError, match="'thief'") as exc:
            victim.heartbeat(0)
        assert exc.value.owner == "thief"

    def test_release_of_live_foreign_lease_refuses(self, tmp_path):
        _store(tmp_path, owner="w1").try_claim(0)
        with pytest.raises(StaleLeaseError, match="'w1'"):
            _store(tmp_path, owner="w2").release(0)

    def test_release_of_expired_foreign_lease_is_a_noop(self, tmp_path):
        dead = _store(tmp_path, owner="dead", ttl=1.0)
        dead.try_claim(0)
        _expire(dead, 0)
        other = _store(tmp_path, owner="w2")
        assert other.release(0) is False
        assert dead.lease_path(0).exists()  # left for a proper steal

    def test_sweep_removes_any_owners_lease_and_tombstones(self, tmp_path):
        a = _store(tmp_path, owner="a")
        b = _store(tmp_path, owner="b")
        a.try_claim(0)
        b.try_claim(1)
        orphan = a.lease_path(0)
        tombstone = orphan.with_name(orphan.name + ".stale-dead")
        tombstone.write_text("{}", encoding="utf-8")
        tracer = Tracer()
        sweeper = _store(tmp_path, owner="c", tracer=tracer)
        assert sweeper.sweep([0, 1, 2]) == 2
        assert list(sweeper.directory.glob("shard-*.lease.json*")) == []
        assert tracer.counters_snapshot()["distrib.leases.swept"] == 2


# ---------------------------------------------------------------------------
# manifest / spec publication
# ---------------------------------------------------------------------------
class TestStudyPublication:
    def test_fresh_dir_infers_manifest(self, tmp_path):
        spec = _spec(10)
        shards = list(iter_chunks(spec, chunk_rows=4))
        manifest, got_spec = resolve_study_manifest(tmp_path, shards)
        assert manifest.kind == "study"
        assert manifest.digest == spec.content_digest()
        assert (manifest.total_rows, manifest.chunk_rows) == (10, 4)
        assert manifest.n_shards == 3
        assert got_spec is spec

    def test_existing_manifest_is_adopted(self, tmp_path):
        spec = _spec(10)
        shards = list(iter_chunks(spec, chunk_rows=4))
        manifest, _ = resolve_study_manifest(tmp_path, shards)
        CheckpointStore.open(tmp_path, manifest)
        adopted, _ = resolve_study_manifest(tmp_path, shards)
        assert adopted == manifest

    def test_digest_mismatch_names_both_digests(self, tmp_path):
        spec_a, spec_b = _spec(8), _spec(12)
        manifest, _ = resolve_study_manifest(
            tmp_path, list(iter_chunks(spec_a, chunk_rows=4))
        )
        CheckpointStore.open(tmp_path, manifest)
        with pytest.raises(ConfigurationError) as exc:
            resolve_study_manifest(
                tmp_path, list(iter_chunks(spec_b, chunk_rows=4))
            )
        message = str(exc.value)
        assert spec_a.content_digest() in message
        assert spec_b.content_digest() in message

    def test_partial_shard_list_is_refused(self, tmp_path):
        shards = list(iter_chunks(_spec(12), chunk_rows=4))
        with pytest.raises(ConfigurationError, match="partial"):
            resolve_study_manifest(tmp_path, shards[1:])
        with pytest.raises(ConfigurationError, match="at least one"):
            resolve_study_manifest(tmp_path, [])

    def test_matrix_shards_are_refused(self, tmp_path):
        import numpy as np

        from repro.batch.matrix import DesignMatrix

        matrix = DesignMatrix.from_arrays(
            sensing_range_m=np.array([5.0, 10.0, 15.0]),
            a_max=np.array([20.0, 20.0, 20.0]),
            f_sensor_hz=np.array([30.0, 30.0, 30.0]),
            f_compute_hz=np.array([10.0, 20.0, 30.0]),
            f_control_hz=np.array([100.0, 100.0, 100.0]),
        )
        shards = list(iter_chunks(matrix, chunk_rows=2))
        with pytest.raises(ConfigurationError, match="StudySpec"):
            resolve_study_manifest(tmp_path, shards)

    def test_publish_spec_is_idempotent_and_digest_checked(self, tmp_path):
        spec = _spec(8)
        publish_spec(tmp_path, spec)
        first = (tmp_path / "spec.json").read_text(encoding="utf-8")
        publish_spec(tmp_path, spec)  # no-op
        assert (tmp_path / "spec.json").read_text(encoding="utf-8") == first
        other = _spec(9)
        with pytest.raises(ConfigurationError) as exc:
            publish_spec(tmp_path, other)
        assert spec.content_digest() in str(exc.value)
        assert other.content_digest() in str(exc.value)

    def test_checkpoint_mismatch_error_names_both_values(self, tmp_path):
        # Satellite fix: CheckpointStore.open used to say only that the
        # manifest "does not match" — operators need expected vs found.
        spec = _spec(8)
        manifest, _ = resolve_study_manifest(
            tmp_path, list(iter_chunks(spec, chunk_rows=4))
        )
        CheckpointStore.open(tmp_path, manifest)
        other = replace(manifest, digest="f" * 32, chunk_rows=2)
        with pytest.raises(ConfigurationError) as exc:
            CheckpointStore.open(tmp_path, other)
        message = str(exc.value)
        assert manifest.digest in message  # what the checkpoint has
        assert "'" + "f" * 32 + "'" in message  # what this run has
        assert "chunk_rows" in message and "digest" in message

    def test_open_study_waits_then_errors_helpfully(self, tmp_path):
        with pytest.raises(ConfigurationError, match="--wait"):
            open_study(tmp_path, wait_s=0.0)

    def test_open_study_rejects_mixed_directories(self, tmp_path):
        spec = _spec(8)
        manifest, _ = resolve_study_manifest(
            tmp_path, list(iter_chunks(spec, chunk_rows=4))
        )
        CheckpointStore.open(tmp_path, manifest)
        # A foreign spec.json lands in the directory (a mixed-up copy).
        (tmp_path / "spec.json").write_text(
            _spec(9).to_json(), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError) as exc:
            open_study(tmp_path)
        assert manifest.digest in str(exc.value)
        assert _spec(9).content_digest() in str(exc.value)


# ---------------------------------------------------------------------------
# the distributed executor: bitwise identity to single-host
# ---------------------------------------------------------------------------
class TestDistributedExecutor:
    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="lease_ttl_s"):
            DistributedExecutor(tmp_path, lease_ttl_s=0.0)
        with pytest.raises(ConfigurationError, match="n_workers"):
            DistributedExecutor(tmp_path, n_workers=0)
        with pytest.raises(ConfigurationError, match="poll_interval_s"):
            DistributedExecutor(tmp_path, poll_interval_s=-1.0)
        with pytest.raises(ConfigurationError, match="heartbeat"):
            DistributedExecutor(
                tmp_path, lease_ttl_s=10.0, heartbeat_interval_s=6.0
            )

    def test_single_worker_matches_serial(self, tmp_path):
        spec = _spec(10)
        serial = run_study(spec)
        with DistributedExecutor(tmp_path, worker_id="solo") as ex:
            dist = run_study(spec, executor=ex, chunk_rows=3)
        assert batch_results_equal(serial.batch, dist.batch)
        assert dist.to_json() == serial.to_json()  # bitwise, not just equal
        assert list((tmp_path / "leases").glob("*.lease.json")) == []

    @pytest.mark.parametrize("n_joiners,chunk_rows", [(1, 3), (2, 2), (3, 5)])
    def test_fleet_is_bitwise_identical_to_serial(
        self, tmp_path, n_joiners, chunk_rows
    ):
        spec = _spec(20)
        serial = run_study(spec)
        reports = []

        def join(i: int) -> None:
            reports.append(
                run_worker(
                    tmp_path,
                    worker_id=f"join-{i}",
                    lease_ttl_s=10.0,
                    poll_interval_s=0.02,
                    wait_s=30.0,
                )
            )

        threads = [
            threading.Thread(target=join, args=(i,))
            for i in range(n_joiners)
        ]
        for t in threads:
            t.start()
        try:
            with DistributedExecutor(
                tmp_path,
                worker_id="init",
                lease_ttl_s=10.0,
                poll_interval_s=0.02,
            ) as ex:
                dist = run_study(spec, executor=ex, chunk_rows=chunk_rows)
        finally:
            for t in threads:
                t.join()
        assert batch_results_equal(serial.batch, dist.batch)
        n_shards = -(-20 // chunk_rows)
        # Every shard was computed at least once across the fleet, and
        # the finished dir holds zero leases (orphaned or otherwise).
        assert sum(r.computed for r in reports) <= n_shards
        assert all(r.shards_total == n_shards for r in reports)
        assert all(r.spec_digest == spec.content_digest() for r in reports)
        assert list((tmp_path / "leases").glob("*.lease.json")) == []
        shard_files = sorted(tmp_path.glob("shard-*.jsonl"))
        assert len(shard_files) == n_shards

    def test_crashed_workers_ghost_lease_is_reclaimed(self, tmp_path):
        # A worker claimed shard 0 and died mid-compute: its lease is
        # on disk with no record and no heartbeats coming.  The fleet
        # must steal it and still produce the identical result.
        spec = _spec(12)
        serial = run_study(spec)
        shards = list(iter_chunks(spec, chunk_rows=4))
        manifest, _ = resolve_study_manifest(tmp_path, shards)
        CheckpointStore.open(tmp_path, manifest)
        publish_spec(tmp_path, spec)
        ghost = LeaseStore(
            tmp_path, manifest.digest, "ghost", lease_ttl_s=0.5
        )
        ghost.try_claim(0)
        _expire(ghost, 0)
        tracer = Tracer()
        with pytest.warns(RuntimeWarning, match="'ghost'"):
            with DistributedExecutor(
                tmp_path,
                worker_id="survivor",
                lease_ttl_s=5.0,
                poll_interval_s=0.02,
            ) as ex:
                dist = run_study(
                    spec, executor=ex, chunk_rows=4, tracer=tracer
                )
        assert batch_results_equal(serial.batch, dist.batch)
        counters = tracer.counters_snapshot()
        assert counters["distrib.leases.stolen"] == 1
        assert counters["distrib.shards.computed"] == 3
        assert list((tmp_path / "leases").glob("*.lease.json")) == []

    def test_mid_run_crash_then_resume(self, tmp_path, monkeypatch):
        # Kill the evaluator after two shards (simulating a process
        # death), then re-run: the survivor resumes the two records and
        # computes the rest, matching serial bitwise.
        spec = _spec(12)
        serial = run_study(spec)
        calls = {"n": 0}
        import repro.distrib.executor as executor_mod

        real = executor_mod._evaluate_shard

        def dying(task):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt  # what SIGINT looks like inside
            return real(task)

        monkeypatch.setattr(executor_mod, "_evaluate_shard", dying)
        with pytest.raises(KeyboardInterrupt):
            with DistributedExecutor(tmp_path, worker_id="w1") as ex:
                run_study(spec, executor=ex, chunk_rows=3)
        monkeypatch.setattr(executor_mod, "_evaluate_shard", real)
        assert len(list(tmp_path.glob("shard-*.jsonl"))) == 2
        # The died-mid-shard lease was released on the way out; either
        # way the re-run must complete from the records.
        tracer = Tracer()
        with DistributedExecutor(tmp_path, worker_id="w2") as ex:
            dist = run_study(spec, executor=ex, chunk_rows=3, tracer=tracer)
        assert batch_results_equal(serial.batch, dist.batch)
        counters = tracer.counters_snapshot()
        assert counters["distrib.shards.resumed"] == 2
        assert counters["distrib.shards.computed"] == 2
        assert list((tmp_path / "leases").glob("*.lease.json")) == []

    def test_chunking_mismatch_is_refused(self, tmp_path):
        spec = _spec(12)
        with DistributedExecutor(tmp_path, worker_id="w1") as ex:
            run_study(spec, executor=ex, chunk_rows=4)
        with pytest.raises(ConfigurationError, match="chunk_rows=4"):
            with DistributedExecutor(tmp_path, worker_id="w2") as ex:
                run_study(spec, executor=ex, chunk_rows=3)

    def test_injected_delay_env_is_parsed_defensively(self, monkeypatch):
        from repro.distrib.executor import _injected_delay_s

        monkeypatch.delenv(INJECT_DELAY_ENV, raising=False)
        assert _injected_delay_s() == 0.0
        monkeypatch.setenv(INJECT_DELAY_ENV, "0.25")
        assert _injected_delay_s() == 0.25
        monkeypatch.setenv(INJECT_DELAY_ENV, "-3")
        assert _injected_delay_s() == 0.0
        monkeypatch.setenv(INJECT_DELAY_ENV, "not-a-number")
        assert _injected_delay_s() == 0.0

    def test_default_worker_id_is_host_and_pid(self):
        assert default_worker_id().endswith(f"-{os.getpid()}")


class TestRunWorker:
    def test_worker_alone_finishes_the_study(self, tmp_path):
        spec = _spec(10)
        serial = run_study(spec)
        shards = list(iter_chunks(spec, chunk_rows=4))
        manifest, _ = resolve_study_manifest(tmp_path, shards)
        CheckpointStore.open(tmp_path, manifest)
        publish_spec(tmp_path, spec)
        tracer = Tracer()
        report = run_worker(
            tmp_path,
            worker_id="lone",
            lease_ttl_s=10.0,
            poll_interval_s=0.02,
            tracer=tracer,
        )
        assert report.computed == 3 and report.loaded == 0
        assert report.rows_computed == 10
        assert report.counters["distrib.shards.computed"] == 3
        # The records it left are the study, bit for bit.
        with DistributedExecutor(tmp_path, worker_id="reader") as ex:
            dist = run_study(spec, executor=ex, chunk_rows=4)
        assert batch_results_equal(serial.batch, dist.batch)

    def test_worker_validates_poll(self, tmp_path):
        with pytest.raises(ConfigurationError, match="poll_interval_s"):
            run_worker(tmp_path, poll_interval_s=0.0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestDistributedCli:
    def test_flag_matrix_exits_2(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(_spec(4).to_json(), encoding="utf-8")
        cases = [
            (["study", "--spec", str(spec_path), "--distributed"],
             "--work-dir"),
            (["study", "--spec", str(spec_path), "--distributed",
              "--work-dir", str(tmp_path / "wd"), "--workers", "2",
              "--backend", "thread"], "--backend"),
            (["study", "--spec", str(spec_path), "--distributed",
              "--work-dir", str(tmp_path / "wd"),
              "--checkpoint", str(tmp_path / "ck")], "--checkpoint"),
            (["study", "--spec", str(spec_path), "--distributed",
              "--work-dir", str(tmp_path / "wd"), "--lease-ttl", "0"],
             "--lease-ttl"),
            (["study", "--spec", str(spec_path),
              "--work-dir", str(tmp_path / "wd")], "--distributed"),
            (["study", "--spec", str(spec_path), "--worker-id", "w"],
             "--distributed"),
            (["study", "--spec", str(spec_path), "--lease-ttl", "5"],
             "--distributed"),
            (["worker", "--work-dir", str(tmp_path / "wd"),
              "--lease-ttl", "-1"], "--lease-ttl"),
            (["worker", "--work-dir", str(tmp_path / "wd"),
              "--poll", "0"], "--poll"),
            (["worker", "--work-dir", str(tmp_path / "wd"),
              "--wait", "-2"], "--wait"),
        ]
        for argv, needle in cases:
            assert cli_main(argv) == 2, argv
            err = capsys.readouterr().err
            assert "error:" in err and needle in err, argv

    def test_study_then_worker_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec = _spec(8)
        spec_path.write_text(spec.to_json(), encoding="utf-8")
        work_dir = tmp_path / "wd"
        assert cli_main([
            "study", "--spec", str(spec_path), "--distributed",
            "--work-dir", str(work_dir), "--chunk-rows", "3",
            "--worker-id", "cli-init", "--lease-ttl", "10", "--json",
        ]) == 0
        from repro.study.result import StudyResult

        out = capsys.readouterr().out
        cli_result = StudyResult.from_dict(json.loads(out))
        serial = run_study(spec)
        assert batch_results_equal(serial.batch, cli_result.batch)
        # A worker joining the finished study resumes everything.
        assert cli_main([
            "worker", "--work-dir", str(work_dir),
            "--worker-id", "cli-join", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["resumed"] == 3
        assert report["computed"] == 0
        assert report["worker_id"] == "cli-join"
        assert report["spec_digest"] == spec.content_digest()

    def test_worker_human_summary(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(_spec(4).to_json(), encoding="utf-8")
        work_dir = tmp_path / "wd"
        assert cli_main([
            "study", "--spec", str(spec_path), "--distributed",
            "--work-dir", str(work_dir), "--chunk-rows", "2", "--json",
        ]) == 0
        capsys.readouterr()
        assert cli_main([
            "worker", "--work-dir", str(work_dir), "--worker-id", "human",
        ]) == 0
        out = capsys.readouterr().out
        assert "worker human" in out
        assert "2 already checkpointed" in out

    def test_worker_without_study_is_a_clean_error(self, tmp_path, capsys):
        assert cli_main([
            "worker", "--work-dir", str(tmp_path / "empty"),
        ]) == 1
        assert "no distributed study" in capsys.readouterr().err

    def test_rerun_adopts_existing_chunking(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(_spec(8).to_json(), encoding="utf-8")
        work_dir = tmp_path / "wd"
        for _ in range(2):  # second run omits --chunk-rows: adopt, resume
            argv = [
                "study", "--spec", str(spec_path), "--distributed",
                "--work-dir", str(work_dir), "--json",
            ]
            if _ == 0:
                argv[-1:-1] = ["--chunk-rows", "3"]
            assert cli_main(argv) == 0
            capsys.readouterr()
        manifest = json.loads(
            (work_dir / "manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["chunk_rows"] == 3
        assert len(list(work_dir.glob("shard-*.jsonl"))) == 3


# ---------------------------------------------------------------------------
# serve integration
# ---------------------------------------------------------------------------
class TestServeDistrib:
    def test_both_roots_are_mutually_exclusive(self, tmp_path):
        from repro.serve.scheduler import StudyScheduler

        with pytest.raises(ConfigurationError, match="mutually"):
            StudyScheduler(
                checkpoint_root=tmp_path / "a", distrib_root=tmp_path / "b"
            )

    def test_scheduler_runs_studies_distributed(self, tmp_path):
        from repro.serve.scheduler import StudyScheduler
        from repro.study.result import StudyResult

        spec = _spec(8)
        scheduler = StudyScheduler(chunk_rows=4, distrib_root=tmp_path)
        scheduler.start()
        try:
            record, _ = scheduler.submit(spec)
            assert record.wait_done(timeout_s=60)
            assert record.state == "done"
        finally:
            scheduler.shutdown()
        served = StudyResult.from_json(record.result_json())
        serial = run_study(spec)
        assert batch_results_equal(serial.batch, served.batch)
        # The study ran in a joinable per-study work dir under the root.
        work_dir = tmp_path / record.study_id
        manifest = json.loads(
            (work_dir / "manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["digest"] == spec.content_digest()
        assert len(list(work_dir.glob("shard-*.jsonl"))) == 2
        assert list((work_dir / "leases").glob("*.lease.json")) == []
