"""Tests for the Skyline tool: knobs, analysis, reports, CLI."""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundKind
from repro.errors import ConfigurationError
from repro.skyline.analysis import analyze_design
from repro.skyline.cli import main as cli_main
from repro.skyline.knobs import Knobs
from repro.skyline.plotting import roofline_figure
from repro.skyline.tool import Skyline


class TestKnobs:
    def test_defaults_build_a_flyable_uav(self):
        uav = Knobs().build_uav()
        assert uav.total_mass_g > 0
        assert uav.max_acceleration > 0

    def test_runtime_knob_maps_to_throughput(self):
        knobs = Knobs(compute_runtime_s=0.909)
        assert knobs.f_compute_hz == pytest.approx(1.1, abs=0.002)

    def test_tdp_knob_sizes_heatsink(self):
        light = Knobs(compute_tdp_w=1.5).build_uav()
        heavy = Knobs(compute_tdp_w=30.0).build_uav()
        assert heavy.total_mass_g - light.total_mass_g > 100.0

    def test_payload_knob_adds_weight(self):
        base = Knobs().build_uav()
        loaded = Knobs(payload_weight_g=500.0).build_uav()
        assert loaded.total_mass_g == pytest.approx(
            base.total_mass_g + 500.0
        )

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            Knobs(sensor_framerate_hz=0.0)
        with pytest.raises(ConfigurationError):
            Knobs(compute_runtime_s=-1.0)


class TestAnalysis:
    def test_compute_bound_tip_quantifies_speedup(self, pelican_tx2):
        result = analyze_design(pelican_tx2, f_compute_hz=1.1)
        assert result.bound is BoundKind.COMPUTE
        assert any("39" in tip for tip in result.tips)

    def test_physics_bound_suggests_tdp_trade(self, spark_agx):
        result = analyze_design(spark_agx, f_compute_hz=230.0)
        assert result.bound is BoundKind.PHYSICS
        assert any("over-provisioned" in tip for tip in result.tips)
        assert result.tdp_scenario is not None
        assert "halving TDP" in result.tdp_scenario

    def test_sensor_bound_tip(self, pelican_tx2):
        slow_sensor = pelican_tx2.with_sensor(
            pelican_tx2.sensor.with_framerate(10.0)
        )
        result = analyze_design(slow_sensor, f_compute_hz=178.0)
        assert result.bound is BoundKind.SENSOR
        assert any("sensor" in tip for tip in result.tips)

    def test_no_tdp_scenario_for_heatsinkless(self, spark_ncs):
        result = analyze_design(spark_ncs, f_compute_hz=150.0)
        assert result.tdp_scenario is None


class TestSkylineSession:
    def test_from_preset_with_overrides(self):
        session = Skyline.from_preset(
            "asctec-pelican",
            compute_name="jetson-tx2",
            sensor_range_m=3.0,
            sensor_framerate_hz=30.0,
        )
        assert session.uav.sensor.range_m == 3.0
        assert session.uav.sensor.framerate_hz == 30.0

    def test_evaluate_algorithm_report(self, ):
        session = Skyline.from_preset("dji-spark", compute_name="intel-ncs")
        report = session.evaluate_algorithm("dronet")
        assert report.f_compute_hz == 150.0
        text = report.text()
        assert "dji-spark" in text
        assert "Optimization tips" in text

    def test_evaluate_throughput_runtime_knob(self):
        session = Skyline.from_preset(
            "asctec-pelican", sensor_range_m=3.0
        )
        report = session.evaluate_throughput(1.1, label="spa")
        assert report.analysis.bound is BoundKind.COMPUTE

    def test_figure_and_ascii_need_reports(self):
        session = Skyline.from_preset("dji-spark")
        with pytest.raises(ValueError):
            session.figure()
        session.evaluate_algorithm("dronet")
        assert "F-1" in session.ascii()
        svg = session.figure().render().to_svg()
        assert "dronet" in svg

    def test_reports_accumulate(self):
        session = Skyline.from_preset("dji-spark", compute_name="intel-ncs")
        session.evaluate_algorithm("dronet")
        session.evaluate_throughput(55.0, label="custom")
        assert len(session.reports) == 2


class TestRooflineFigure:
    def test_entries_plotted_with_knees(self, pelican_tx2):
        plot = roofline_figure(
            (("one", pelican_tx2.f1(1.1)), ("two", pelican_tx2.f1(178.0))),
        )
        svg = plot.render().to_svg()
        assert "one" in svg and "two" in svg
        assert "knee" in svg


class TestCli:
    def test_analyze_algorithm(self, capsys):
        code = cli_main(
            [
                "analyze", "--uav", "dji-spark", "--compute", "intel-ncs",
                "--algorithm", "dronet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Skyline analysis" in out

    def test_analyze_runtime_with_plot(self, capsys, tmp_path):
        plot = tmp_path / "out.svg"
        code = cli_main(
            [
                "analyze", "--uav", "asctec-pelican", "--runtime", "0.909",
                "--sensor-range", "3.0", "--plot", str(plot), "--ascii",
            ]
        )
        assert code == 0
        assert plot.exists()
        out = capsys.readouterr().out
        assert "F-1" in out

    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dji-spark" in out
        assert "jetson-tx2" in out
        assert "dronet" in out

    def test_sweep_subcommand(self, capsys, tmp_path):
        plot = tmp_path / "sweep.svg"
        code = cli_main(
            [
                "sweep", "--knob", "compute_tdp_w",
                "--values", "1", "15", "30",
                "--plot", str(plot),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compute_tdp_w" in out
        assert plot.exists()

    def test_sweep_reports_crossover(self, capsys):
        code = cli_main(
            [
                "sweep", "--knob", "compute_runtime_s",
                "--values", "0.005", "0.5",
            ]
        )
        assert code == 0
        assert "bound changes" in capsys.readouterr().out
