"""Tests for the Skyline tool: knobs, sweeps, analysis, reports, CLI."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.bounds import BoundKind
from repro.errors import ConfigurationError
from repro.skyline.analysis import analyze_design
from repro.skyline.cli import main as cli_main
from repro.skyline.knobs import Knobs
from repro.skyline.plotting import roofline_figure
from repro.skyline.sweep import sweep_grid, sweep_knob
from repro.skyline.tool import Skyline


class TestKnobs:
    def test_defaults_build_a_flyable_uav(self):
        uav = Knobs().build_uav()
        assert uav.total_mass_g > 0
        assert uav.max_acceleration > 0

    def test_runtime_knob_maps_to_throughput(self):
        knobs = Knobs(compute_runtime_s=0.909)
        assert knobs.f_compute_hz == pytest.approx(1.1, abs=0.002)

    def test_tdp_knob_sizes_heatsink(self):
        light = Knobs(compute_tdp_w=1.5).build_uav()
        heavy = Knobs(compute_tdp_w=30.0).build_uav()
        assert heavy.total_mass_g - light.total_mass_g > 100.0

    def test_payload_knob_adds_weight(self):
        base = Knobs().build_uav()
        loaded = Knobs(payload_weight_g=500.0).build_uav()
        assert loaded.total_mass_g == pytest.approx(
            base.total_mass_g + 500.0
        )

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            Knobs(sensor_framerate_hz=0.0)
        with pytest.raises(ConfigurationError):
            Knobs(compute_runtime_s=-1.0)


class TestAnalysis:
    def test_compute_bound_tip_quantifies_speedup(self, pelican_tx2):
        result = analyze_design(pelican_tx2, f_compute_hz=1.1)
        assert result.bound is BoundKind.COMPUTE
        assert any("39" in tip for tip in result.tips)

    def test_physics_bound_suggests_tdp_trade(self, spark_agx):
        result = analyze_design(spark_agx, f_compute_hz=230.0)
        assert result.bound is BoundKind.PHYSICS
        assert any("over-provisioned" in tip for tip in result.tips)
        assert result.tdp_scenario is not None
        assert "halving TDP" in result.tdp_scenario

    def test_sensor_bound_tip(self, pelican_tx2):
        slow_sensor = pelican_tx2.with_sensor(
            pelican_tx2.sensor.with_framerate(10.0)
        )
        result = analyze_design(slow_sensor, f_compute_hz=178.0)
        assert result.bound is BoundKind.SENSOR
        assert any("sensor" in tip for tip in result.tips)

    def test_no_tdp_scenario_for_heatsinkless(self, spark_ncs):
        result = analyze_design(spark_ncs, f_compute_hz=150.0)
        assert result.tdp_scenario is None


class TestSkylineSession:
    def test_from_preset_with_overrides(self):
        session = Skyline.from_preset(
            "asctec-pelican",
            compute_name="jetson-tx2",
            sensor_range_m=3.0,
            sensor_framerate_hz=30.0,
        )
        assert session.uav.sensor.range_m == 3.0
        assert session.uav.sensor.framerate_hz == 30.0

    def test_evaluate_algorithm_report(self, ):
        session = Skyline.from_preset("dji-spark", compute_name="intel-ncs")
        report = session.evaluate_algorithm("dronet")
        assert report.f_compute_hz == 150.0
        text = report.text()
        assert "dji-spark" in text
        assert "Optimization tips" in text

    def test_evaluate_throughput_runtime_knob(self):
        session = Skyline.from_preset(
            "asctec-pelican", sensor_range_m=3.0
        )
        report = session.evaluate_throughput(1.1, label="spa")
        assert report.analysis.bound is BoundKind.COMPUTE

    def test_figure_and_ascii_need_reports(self):
        session = Skyline.from_preset("dji-spark")
        with pytest.raises(ConfigurationError):
            session.figure()
        session.evaluate_algorithm("dronet")
        assert "F-1" in session.ascii()
        svg = session.figure().render().to_svg()
        assert "dronet" in svg

    def test_reports_accumulate(self):
        session = Skyline.from_preset("dji-spark", compute_name="intel-ncs")
        session.evaluate_algorithm("dronet")
        session.evaluate_throughput(55.0, label="custom")
        assert len(session.reports) == 2


class TestSweepGrid:
    @pytest.fixture()
    def grid(self):
        return sweep_grid(
            Knobs(),
            {
                "compute_tdp_w": (1.0, 7.5, 30.0),
                "compute_runtime_s": np.geomspace(0.002, 0.5, 4),
                "payload_weight_g": (0.0, 500.0),
            },
        )

    def test_three_knobs_crossed_in_one_call(self, grid):
        assert grid.knobs == (
            "compute_tdp_w", "compute_runtime_s", "payload_weight_g",
        )
        assert grid.shape == (3, 4, 2)
        assert len(grid) == 24
        assert grid.values("safe_velocity").shape == (3, 4, 2)
        assert "compute_tdp_w[3]" in grid.describe()

    def test_cells_match_scalar_assembly(self, grid):
        for index in ((0, 0, 0), (2, 1, 1), (1, 3, 0)):
            knobs = replace(
                Knobs(),
                **{
                    name: float(grid.axis(name)[i])
                    for name, i in zip(grid.knobs, index)
                },
            )
            model = knobs.build_uav().f1(knobs.f_compute_hz)
            assert grid.values("safe_velocity")[index] == pytest.approx(
                model.safe_velocity, abs=1e-9
            )
            assert grid.bound_at(*index) is model.bound

    def test_bound_grid_partitions_cells(self, grid):
        codes = grid.bound_grid()
        assert codes.shape == grid.shape
        assert sum(grid.bound_counts().values()) == len(grid)

    def test_slice_matches_single_knob_sweep(self, grid):
        line = grid.slice(
            "compute_runtime_s", compute_tdp_w=30.0, payload_weight_g=500.0
        )
        fixed_base = replace(
            Knobs(), compute_tdp_w=30.0, payload_weight_g=500.0
        )
        fresh = sweep_knob(
            fixed_base, "compute_runtime_s",
            grid.axis("compute_runtime_s"),
        )
        assert line.base == fixed_base
        assert [p.value for p in line.points] == [
            p.value for p in fresh.points
        ]
        for sliced, scalar in zip(line.points, fresh.points):
            assert sliced.safe_velocity == pytest.approx(
                scalar.safe_velocity, abs=1e-9
            )
            assert sliced.bound is scalar.bound
        assert "compute_runtime_s" in line.table()

    def test_slice_defaults_unfixed_axes_to_first_value(self, grid):
        line = grid.slice("compute_tdp_w")
        assert line.base.compute_runtime_s == pytest.approx(
            float(grid.axis("compute_runtime_s")[0])
        )
        assert line.base.payload_weight_g == 0.0

    def test_slice_validation(self, grid):
        with pytest.raises(ConfigurationError, match="not a grid axis"):
            grid.slice("sensor_range_m")
        with pytest.raises(ConfigurationError, match="not grid axes"):
            grid.slice("compute_tdp_w", sensor_range_m=5.0)
        with pytest.raises(ConfigurationError, match="sliced knob"):
            grid.slice("compute_tdp_w", compute_tdp_w=1.0)
        with pytest.raises(ConfigurationError, match="not on the"):
            grid.slice("compute_tdp_w", payload_weight_g=123.0)

    def test_crossovers_locate_bound_flips(self, grid):
        flips = grid.crossovers("compute_runtime_s")
        assert flips  # slowing compute always crosses a bound here
        codes = grid.bound_grid()
        for crossover in flips:
            i = list(grid.axis("compute_tdp_w")).index(
                crossover.fixed["compute_tdp_w"]
            )
            k = list(grid.axis("payload_weight_g")).index(
                crossover.fixed["payload_weight_g"]
            )
            j_before = list(grid.axis("compute_runtime_s")).index(
                crossover.at
            )
            assert grid.bound_at(i, j_before, k) is crossover.from_bound
            assert grid.bound_at(i, j_before + 1, k) is crossover.to_bound
        assert len(grid.crossovers()) >= len(flips)

    def test_unknown_value_column_rejected(self, grid):
        with pytest.raises(ConfigurationError, match="unknown grid column"):
            grid.values("mass")

    def test_unsweepable_or_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot sweep"):
            sweep_grid(Knobs(), {"rotor_count": (4, 6)})
        with pytest.raises(ConfigurationError, match="at least one"):
            sweep_grid(Knobs(), {})


class TestRooflineFigure:
    def test_entries_plotted_with_knees(self, pelican_tx2):
        plot = roofline_figure(
            (("one", pelican_tx2.f1(1.1)), ("two", pelican_tx2.f1(178.0))),
        )
        svg = plot.render().to_svg()
        assert "one" in svg and "two" in svg
        assert "knee" in svg


class TestCli:
    def test_analyze_algorithm(self, capsys):
        code = cli_main(
            [
                "analyze", "--uav", "dji-spark", "--compute", "intel-ncs",
                "--algorithm", "dronet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Skyline analysis" in out

    def test_analyze_runtime_with_plot(self, capsys, tmp_path):
        plot = tmp_path / "out.svg"
        code = cli_main(
            [
                "analyze", "--uav", "asctec-pelican", "--runtime", "0.909",
                "--sensor-range", "3.0", "--plot", str(plot), "--ascii",
            ]
        )
        assert code == 0
        assert plot.exists()
        out = capsys.readouterr().out
        assert "F-1" in out

    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dji-spark" in out
        assert "jetson-tx2" in out
        assert "dronet" in out

    def test_sweep_subcommand(self, capsys, tmp_path):
        plot = tmp_path / "sweep.svg"
        code = cli_main(
            [
                "sweep", "--knob", "compute_tdp_w",
                "--values", "1", "15", "30",
                "--plot", str(plot),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "compute_tdp_w" in out
        assert plot.exists()

    def test_sweep_reports_crossover(self, capsys):
        code = cli_main(
            [
                "sweep", "--knob", "compute_runtime_s",
                "--values", "0.005", "0.5",
            ]
        )
        assert code == 0
        assert "bound changes" in capsys.readouterr().out
