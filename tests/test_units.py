"""Tests for unit conversions and validation helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import ConfigurationError


class TestConversions:
    def test_mass_roundtrip(self):
        assert units.kg_to_grams(units.grams_to_kg(1234.0)) == pytest.approx(1234.0)

    def test_gram_force(self):
        assert units.gram_force_to_newtons(1000.0) == pytest.approx(
            units.GRAVITY
        )
        assert units.newtons_to_gram_force(
            units.gram_force_to_newtons(435.0)
        ) == pytest.approx(435.0)

    def test_rate_period_roundtrip(self):
        assert units.period_to_hz(units.hz_to_period(60.0)) == pytest.approx(60.0)

    def test_ms_conversion(self):
        assert units.ms_to_s(910.0) == pytest.approx(0.91)
        assert units.s_to_ms(0.91) == pytest.approx(910.0)

    def test_angles(self):
        assert units.deg_to_rad(180.0) == pytest.approx(math.pi)
        assert units.rad_to_deg(math.pi / 2) == pytest.approx(90.0)

    def test_battery_energy(self):
        # 5000 mAh at 11.1 V = 55.5 Wh (the Table I battery).
        assert units.mah_to_wh(5000.0, 11.1) == pytest.approx(55.5)

    def test_wh_to_joules(self):
        assert units.wh_to_joules(1.0) == 3600.0


class TestValidation:
    def test_require_positive_accepts(self):
        assert units.require_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_require_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            units.require_positive("x", bad)

    def test_require_positive_rejects_none(self):
        with pytest.raises(ConfigurationError):
            units.require_positive("x", None)  # type: ignore[arg-type]

    def test_require_nonnegative(self):
        assert units.require_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ConfigurationError):
            units.require_nonnegative("x", -0.1)

    def test_require_fraction(self):
        assert units.require_fraction("x", 0.5) == 0.5
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                units.require_fraction("x", bad)

    def test_require_in_range(self):
        assert units.require_in_range("x", 5.0, 0.0, 10.0) == 5.0
        with pytest.raises(ConfigurationError):
            units.require_in_range("x", 11.0, 0.0, 10.0)

    def test_error_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="thrust"):
            units.require_positive("thrust", -1.0)

    @given(value=st.floats(min_value=1e-9, max_value=1e9))
    def test_positive_values_pass_through(self, value):
        assert units.require_positive("v", value) == value
