"""End-to-end and unit tests for the serving layer (repro.serve).

The E2E tests boot a real server (:class:`ServerHandle`, port 0) and
talk to it over actual sockets with :class:`ServeClient` — the same
path CI's smoke job exercises.  The scheduler/state unit tests pin
the coalescing and backpressure semantics without HTTP in the way,
using a monkeypatched ``run_study`` where execution order must be
deterministic.
"""

from __future__ import annotations

import http.client
import json
import threading
from pathlib import Path
from time import perf_counter, sleep

import pytest

import repro.serve.scheduler as scheduler_mod
from repro.errors import (
    ConfigurationError,
    ServiceUnavailableError,
    StudyQueueFullError,
    UnknownStudyError,
)
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerHandle,
    StudyScheduler,
    StudyStore,
    envelope_for_exception,
    parse_analyze_request,
    study_id_for_digest,
)
from repro.serve.state import StudyRecord
from repro.study import DesignSpec, StudySpec, run_study
from repro.study.result import StudyResult


def _spec(n_rows: int = 64, start: float = 0.01) -> StudySpec:
    values = [start + 0.002 * i for i in range(n_rows)]
    return StudySpec(
        design=DesignSpec.knob_axes(axes={"compute_runtime_s": values})
    )


# ---------------------------------------------------------------------
# E2E over real sockets
# ---------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    handle = ServerHandle(
        ServeConfig(chunk_rows=8, max_queue=8, progress_poll_s=0.05)
    ).start()
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


class TestHealthAndStats:
    def test_health_reports_ready(self, client):
        doc = client.health()
        assert doc["status"] == "ok"
        assert doc["protocol_version"] == 1

    def test_stats_is_a_pinned_envelope(self, client):
        doc = client.stats()
        assert doc["kind"] == "stats"
        assert doc["version"] == 1
        assert isinstance(doc["counters"], dict)
        assert isinstance(doc["gauges"], dict)


class TestAnalyzeEndpoint:
    def test_matches_in_process_report(self, client):
        from repro.skyline.tool import Skyline

        request = {"uav": "dji-spark", "runtime_s": 0.1}
        served = client.analyze(request)
        local = (
            Skyline.from_preset("dji-spark")
            .evaluate_throughput(10.0, label="runtime=0.1s")
            .to_dict()
        )
        assert served == local

    def test_malformed_body_names_the_field(self, client):
        with pytest.raises(ConfigurationError, match="'bogus'"):
            client.analyze({"uav": "dji-spark", "bogus": 1})
        with pytest.raises(ConfigurationError, match="'uav'"):
            client.analyze({"runtime_s": 0.1})
        with pytest.raises(ConfigurationError, match="'algorithm'"):
            client.analyze({"uav": "dji-spark"})  # neither knob given


class TestStudyLifecycle:
    def test_submit_run_result_roundtrip(self, client):
        spec = _spec(48, start=0.02)
        ack = client.submit(spec.to_dict())
        assert ack["kind"] == "ack"
        assert ack["coalesced"] is False
        assert ack["study_id"] == study_id_for_digest(
            spec.content_digest()
        )
        text = client.wait_result(ack["study_id"], timeout_s=60)
        served = StudyResult.from_json(text)
        assert served.equals(run_study(spec))

    def test_status_embeds_result_when_done(self, client):
        spec = _spec(16, start=0.03)
        ack = client.submit(spec.to_dict())
        client.wait_result(ack["study_id"], timeout_s=60)
        status = client.status(ack["study_id"])
        assert status["state"] == "done"
        assert status["result_ready"] is True
        assert status["result"] is not None
        assert StudyResult.from_dict(status["result"]).equals(
            run_study(spec)
        )

    def test_unknown_study_id_is_404(self, client):
        with pytest.raises(UnknownStudyError, match="study-nope"):
            client.status("study-nope")

    def test_unknown_path_and_method_are_enveloped(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            conn.request("GET", "/v2/nothing")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 404
            assert doc["kind"] == "error"
            conn.request("DELETE", "/health")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 405
            assert "GET" in doc["message"]
        finally:
            conn.close()


class TestCoalescing:
    def test_eight_clients_one_execution_identical_bytes(self, server):
        spec_doc = _spec(64, start=0.04).to_dict()
        before = server.server.tracer.counters_snapshot()
        results: list = [None] * 8
        errors: list = []

        def worker(i: int) -> None:
            try:
                with ServeClient(port=server.port) as c:
                    ack = c.submit(spec_doc)
                    results[i] = c.wait_result(
                        ack["study_id"], timeout_s=60
                    )
            except Exception as exc:  # surfaced via the errors list
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(text is not None for text in results)
        # Bitwise-identical fan-out: one JSON text, eight receivers.
        assert len(set(results)) == 1
        after = server.server.tracer.counters_snapshot()
        executed = after.get("serve.studies.executed", 0) - before.get(
            "serve.studies.executed", 0
        )
        coalesced = after.get("serve.studies.coalesced", 0) - before.get(
            "serve.studies.coalesced", 0
        )
        assert executed == 1
        assert coalesced == 7

    def test_resubmitting_a_done_study_coalesces(self, client):
        spec_doc = _spec(16, start=0.05).to_dict()
        first = client.submit(spec_doc)
        client.wait_result(first["study_id"], timeout_s=60)
        again = client.submit(spec_doc)
        assert again["coalesced"] is True
        assert again["state"] == "done"
        assert again["study_id"] == first["study_id"]


class TestProgressStream:
    def test_stream_is_monotone_and_matches_checkpoint(self, tmp_path):
        handle = ServerHandle(
            ServeConfig(
                chunk_rows=8,
                progress_poll_s=0.05,
                checkpoint_root=str(tmp_path),
            )
        ).start()
        try:
            spec = _spec(64, start=0.06)
            with ServeClient(port=handle.port) as c:
                ack = c.submit(spec.to_dict())
                events = list(c.progress_events(ack["study_id"]))
                c.wait_result(ack["study_id"], timeout_s=60)
            assert events, "no progress events streamed"
            assert all(e["kind"] == "progress" for e in events)
            assert events[-1]["final"] is True
            assert events[-1]["state"] == "done"
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs)
            rows = [
                e["progress"]["rows_done"]
                for e in events
                if e["progress"] is not None
            ]
            assert rows == sorted(rows)
            assert rows[-1] == 64
            # The stream's story must agree with the PR-4 shard
            # checkpoint on disk: same total rows, and shard count
            # consistent with the configured chunking.
            ckpt_dir = tmp_path / ack["study_id"]
            manifest = json.loads(
                (ckpt_dir / "manifest.json").read_text()
            )
            assert manifest["total_rows"] == 64
            assert manifest["chunk_rows"] == 8
            assert manifest["n_shards"] == 8
            shard_files = sorted(ckpt_dir.glob("shard-*.jsonl"))
            assert len(shard_files) == manifest["n_shards"]
        finally:
            handle.stop()


class TestBackpressure:
    def test_queue_overflow_is_429_with_retry_after(self, monkeypatch):
        # Deterministic saturation: the worker blocks on a gate, so
        # capacity is exactly (1 running + 1 queued) by construction.
        gate = threading.Event()

        class _StubResult:
            def to_json(self) -> str:
                return "{}"

        def gated_run_study(spec, **kwargs):
            gate.wait(30)
            return _StubResult()

        monkeypatch.setattr(scheduler_mod, "run_study", gated_run_study)
        handle = ServerHandle(
            ServeConfig(max_concurrent=1, max_queue=1)
        ).start()
        try:
            with ServeClient(port=handle.port) as c:
                first = c.submit(_spec(8, start=0.07).to_dict())
                deadline = perf_counter() + 10
                while (
                    c.status(first["study_id"])["state"] != "running"
                ):
                    assert perf_counter() < deadline
                    sleep(0.01)
                c.submit(_spec(8, start=0.08).to_dict())  # fills queue
                with pytest.raises(StudyQueueFullError) as excinfo:
                    c.submit(_spec(8, start=0.09).to_dict())
                assert excinfo.value.retry_after_s >= 1.0
            # The raw response carries the Retry-After header.
            conn = http.client.HTTPConnection("127.0.0.1", handle.port)
            try:
                conn.request(
                    "POST",
                    "/v1/studies",
                    body=json.dumps(_spec(8, start=0.11).to_dict()),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                doc = json.loads(response.read())
                assert response.status == 429
                assert response.getheader("Retry-After") is not None
                assert doc["error"] == "StudyQueueFullError"
                assert doc["retry_after_s"] >= 1.0
            finally:
                conn.close()
            # A rejected spec was never registered: resubmitting after
            # the queue drains starts fresh instead of 404ing.
            counters = handle.server.tracer.counters_snapshot()
            assert counters["serve.studies.rejected"] == 2
        finally:
            gate.set()
            handle.stop()


# ---------------------------------------------------------------------
# Scheduler / state units (no HTTP)
# ---------------------------------------------------------------------
class TestSchedulerUnits:
    def test_submit_before_start_is_unavailable(self):
        scheduler = StudyScheduler()
        with pytest.raises(ServiceUnavailableError):
            scheduler.submit(_spec(4))

    def test_submit_after_shutdown_is_unavailable(self):
        scheduler = StudyScheduler(chunk_rows=8)
        scheduler.start()
        scheduler.shutdown()
        with pytest.raises(ServiceUnavailableError):
            scheduler.submit(_spec(4))

    def test_rejected_spec_is_not_registered(self, monkeypatch):
        gate = threading.Event()

        class _StubResult:
            def to_json(self) -> str:
                return "{}"

        def gated_run_study(spec, **kwargs):
            gate.wait(30)
            return _StubResult()

        monkeypatch.setattr(scheduler_mod, "run_study", gated_run_study)
        scheduler = StudyScheduler(max_concurrent=1, max_queue=1)
        scheduler.start()
        try:
            running, _ = scheduler.submit(_spec(4, start=0.2))
            deadline = perf_counter() + 10
            while running.state != "running":
                assert perf_counter() < deadline
                sleep(0.01)
            queued, _ = scheduler.submit(_spec(4, start=0.3))
            rejected_spec = _spec(4, start=0.4)
            with pytest.raises(StudyQueueFullError):
                scheduler.submit(rejected_spec)
            assert len(scheduler.store) == 2  # the reject left no ghost
            # Coalescing still works against the queued record, and
            # reports its queue position.
            dup, coalesced = scheduler.submit(_spec(4, start=0.3))
            assert coalesced is True
            assert dup is queued
            assert scheduler.queue_position(queued) == 0
        finally:
            gate.set()
            assert running.wait_done(timeout_s=10)
            assert queued.wait_done(timeout_s=10)
            scheduler.shutdown()
        assert running.state == "done"
        assert queued.state == "done"

    def test_shutdown_fails_still_queued_studies(self, monkeypatch):
        gate = threading.Event()

        class _StubResult:
            def to_json(self) -> str:
                return "{}"

        def gated_run_study(spec, **kwargs):
            gate.wait(30)
            return _StubResult()

        monkeypatch.setattr(scheduler_mod, "run_study", gated_run_study)
        scheduler = StudyScheduler(max_concurrent=1, max_queue=4)
        scheduler.start()
        running, _ = scheduler.submit(_spec(4, start=0.5))
        deadline = perf_counter() + 10
        while running.state != "running":
            assert perf_counter() < deadline
            sleep(0.01)
        queued, _ = scheduler.submit(_spec(4, start=0.6))
        gate.set()
        scheduler.shutdown()
        assert running.state == "done"
        # The queued study was drained by shutdown, not left hanging.
        assert queued.state in ("done", "failed")

    def test_failed_study_carries_the_error(self, monkeypatch):
        def exploding_run_study(spec, **kwargs):
            raise ConfigurationError("field 'x': bad")

        monkeypatch.setattr(
            scheduler_mod, "run_study", exploding_run_study
        )
        scheduler = StudyScheduler(max_concurrent=1)
        scheduler.start()
        try:
            record, _ = scheduler.submit(_spec(4, start=0.7))
            assert record.wait_done(timeout_s=10)
            assert record.state == "failed"
            assert "field 'x'" in (record.error or "")
            counters = scheduler.tracer.counters_snapshot()
            assert counters["serve.studies.failed"] == 1
        finally:
            scheduler.shutdown()

    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(ConfigurationError, match="max_concurrent"):
            StudyScheduler(max_concurrent=0)
        with pytest.raises(ConfigurationError, match="max_queue"):
            StudyScheduler(max_queue=0)
        with pytest.raises(ConfigurationError, match="study_workers"):
            StudyScheduler(study_workers=0)


class TestStateUnits:
    def test_record_update_is_monotone(self):
        record = StudyRecord(_spec(4), "ab" * 32)
        record.update_progress({"rows_done": 32, "rows_total": 64})
        record.update_progress({"rows_done": 16, "rows_total": 64})
        assert record.progress is not None
        assert record.progress["rows_done"] == 32

    def test_wait_update_returns_immediately_when_done(self):
        record = StudyRecord(_spec(4), "cd" * 32)
        record.mark_done('{"x": 1}')
        started = perf_counter()
        seq, state, _ = record.wait_update(last_seq=99, timeout_s=5.0)
        assert perf_counter() - started < 1.0
        assert state == "done"

    def test_store_register_is_idempotent(self):
        store = StudyStore()
        spec = _spec(4)
        first, created = store.register(spec)
        second, again = store.register(_spec(4))  # equal content
        assert created is True
        assert again is False
        assert first is second
        assert len(store) == 1
        assert store.get(first.study_id) is first

    def test_store_discard_forgets(self):
        store = StudyStore()
        record, _ = store.register(_spec(4))
        store.discard(record.study_id)
        with pytest.raises(UnknownStudyError):
            store.get(record.study_id)


class TestProtocolUnits:
    def test_taxonomy_maps_to_http_codes(self):
        cases = [
            (StudyQueueFullError("full", retry_after_s=2.5), 429),
            (UnknownStudyError("nope"), 404),
            (ServiceUnavailableError("down"), 503),
            (ConfigurationError("field 'x': bad"), 400),
        ]
        for exc, expected_status in cases:
            envelope = envelope_for_exception(exc)
            assert envelope.status == expected_status
            assert envelope.error == type(exc).__name__
        assert envelope_for_exception(
            StudyQueueFullError("full", retry_after_s=2.5)
        ).retry_after_s == 2.5

    def test_internal_errors_hide_details(self):
        envelope = envelope_for_exception(ZeroDivisionError("secret"))
        assert envelope.status == 500
        assert "secret" not in envelope.message

    def test_parse_analyze_rejects_both_and_neither(self):
        with pytest.raises(ConfigurationError, match="'algorithm'"):
            parse_analyze_request(
                {"uav": "dji-spark", "algorithm": "dronet",
                 "runtime_s": 0.1}
            )
        with pytest.raises(ConfigurationError, match="'runtime_s'"):
            parse_analyze_request(
                {"uav": "dji-spark", "runtime_s": -1.0}
            )
        with pytest.raises(ConfigurationError, match="'<root>'"):
            parse_analyze_request([1, 2])

    def test_envelope_version_is_enforced_client_side(self):
        from repro.io.serialization import serve_envelope_from_dict

        good = {
            "version": 1, "kind": "ack", "study_id": "s",
            "state": "queued", "coalesced": False, "queue_depth": 0,
        }
        assert serve_envelope_from_dict(dict(good)) == good
        with pytest.raises(ConfigurationError, match="version"):
            serve_envelope_from_dict({**good, "version": 2})
        with pytest.raises(ConfigurationError, match="kind"):
            serve_envelope_from_dict({**good, "kind": "mystery"})
        with pytest.raises(ConfigurationError, match="state"):
            serve_envelope_from_dict({**good, "state": "paused"})


# ---------------------------------------------------------------------
# CLI flag validation + the CI smoke path
# ---------------------------------------------------------------------
class TestServeCliFlags:
    def _run(self, *argv: str):
        from repro.skyline.cli import main

        return main(["serve", *argv])

    def test_bad_workers_names_the_flag(self, capsys):
        assert self._run("--workers", "0") == 2
        assert "--workers" in capsys.readouterr().err

    def test_bad_max_queue_names_the_flag(self, capsys):
        assert self._run("--max-queue", "0") == 2
        assert "--max-queue" in capsys.readouterr().err

    def test_bad_max_concurrent_names_the_flag(self, capsys):
        assert self._run("--max-concurrent", "-3") == 2
        assert "--max-concurrent" in capsys.readouterr().err

    def test_bad_port_names_the_flag(self, capsys):
        assert self._run("--port", "70000") == 2
        assert "--port" in capsys.readouterr().err

    def test_backend_requires_workers(self, capsys):
        assert self._run("--backend", "thread") == 2
        assert "--backend" in capsys.readouterr().err

    def test_unknown_flag_exits_2(self, capsys):
        from repro.skyline.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--bogus-flag"])
        assert excinfo.value.code == 2
        assert "--bogus-flag" in capsys.readouterr().err


class TestClientSmoke:
    def test_smoke_main_passes_against_live_server(
        self, server, tmp_path, capsys
    ):
        from repro.serve.client import main as smoke_main

        artifact = tmp_path / "serve-smoke.json"
        rc = smoke_main(
            [
                "--port", str(server.port),
                "--rows", "32",
                "--artifact", str(artifact),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out
        doc = json.loads(artifact.read_text())
        assert doc["events"]
        assert doc["stats"]["kind"] == "stats"
