"""Tests for repro.study: spec -> plan -> result, and the rebased
legacy surfaces (sweep_knob / sweep_grid / dse.explore / CLI)."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import DesignSpace, explore
from repro.errors import ConfigurationError
from repro.skyline.cli import main as cli_main
from repro.skyline.knobs import Knobs
from repro.skyline.sweep import SWEEPABLE_KNOBS, sweep_grid, sweep_knob
from repro.skyline.tool import Skyline
from repro.study import (
    DesignSpec,
    FilterClause,
    RankClause,
    ScenarioSpec,
    StudyResult,
    StudySpec,
    compile_spec,
    run_study,
)


def knob_spec(**axes) -> StudySpec:
    return StudySpec(design=DesignSpec.knob_axes(axes=axes))


class TestSpecValidation:
    """The malformed-spec matrix: errors name the offending field."""

    def test_unknown_knob_named(self):
        with pytest.raises(
            ConfigurationError, match=r"'design\.axes'.*cannot sweep"
        ):
            knob_spec(warp_factor=[1.0, 2.0])

    def test_rotor_count_not_sweepable(self):
        with pytest.raises(ConfigurationError, match="cannot sweep"):
            knob_spec(rotor_count=[4, 6])

    def test_empty_axis_named(self):
        with pytest.raises(
            ConfigurationError,
            match=r"'design\.axes\[compute_tdp_w\]'.*at least one",
        ):
            knob_spec(compute_tdp_w=[])

    def test_no_axes_at_all(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            DesignSpec.knob_axes(axes={})

    def test_non_finite_axis_values(self):
        with pytest.raises(ConfigurationError, match="finite"):
            knob_spec(compute_tdp_w=[1.0, float("nan")])

    def test_filter_on_unknown_column_named(self):
        with pytest.raises(
            ConfigurationError,
            match=r"'filters\[0\]\.column'.*unknown column 'banana'",
        ):
            StudySpec(
                design=DesignSpec.knob_axes(axes={"compute_tdp_w": [1.0]}),
                filters=(FilterClause("banana", ">=", 1.0),),
            )

    def test_filter_bad_operator(self):
        with pytest.raises(ConfigurationError, match=r"filters\.op"):
            FilterClause("safe_velocity", "~=", 1.0)

    def test_bound_filter_needs_name_and_equality(self):
        with pytest.raises(ConfigurationError, match=r"\.op"):
            StudySpec(
                design=DesignSpec.knob_axes(axes={"compute_tdp_w": [1.0]}),
                filters=(FilterClause("bound", ">=", "physics"),),
            )
        with pytest.raises(ConfigurationError, match=r"\.value"):
            StudySpec(
                design=DesignSpec.knob_axes(axes={"compute_tdp_w": [1.0]}),
                filters=(FilterClause("bound", "==", 3),),
            )

    def test_unknown_bound_name_fails_at_run(self):
        spec = StudySpec(
            design=DesignSpec.knob_axes(axes={"compute_tdp_w": [1.0]}),
            filters=(FilterClause("bound", "==", "banana"),),
        )
        with pytest.raises(
            ConfigurationError, match=r"'filters\[0\]\.value'"
        ):
            run_study(spec)

    def test_rank_unknown_column(self):
        with pytest.raises(ConfigurationError, match=r"'rank\.by'"):
            StudySpec(
                design=DesignSpec.knob_axes(axes={"compute_tdp_w": [1.0]}),
                rank=RankClause(by="bound"),
            )

    def test_metrics_unknown_column(self):
        with pytest.raises(ConfigurationError, match="'metrics'"):
            StudySpec(
                design=DesignSpec.knob_axes(axes={"compute_tdp_w": [1.0]}),
                metrics=("banana",),
            )

    def test_empty_preset_dimension(self):
        with pytest.raises(
            ConfigurationError, match=r"'design\.compute_names'"
        ):
            DesignSpec.presets(("dji-spark",), (), ("dronet",))

    def test_redundancy_on_knobs_design_named(self):
        spec = StudySpec(
            design=DesignSpec.knob_axes(axes={"compute_tdp_w": [1.0]}),
            scenarios=ScenarioSpec(compute_redundancy=(1, 2)),
        )
        with pytest.raises(
            ConfigurationError,
            match=r"'scenarios\.compute_redundancy'.*knobs design",
        ):
            compile_spec(spec)

    def test_scenario_axis_validation(self):
        with pytest.raises(
            ConfigurationError, match=r"'scenarios\.a_max_scale'"
        ):
            ScenarioSpec(a_max_scale=(0.0,))
        with pytest.raises(
            ConfigurationError, match=r"'scenarios\.compute_redundancy'"
        ):
            ScenarioSpec(compute_redundancy=(0,))

    def test_unknown_spec_keys_named(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            StudySpec.from_dict(
                {"design": {"kind": "knobs", "axes": {}}, "bogus": 1}
            )
        with pytest.raises(ConfigurationError, match="'scenarios'"):
            ScenarioSpec.from_dict({"wind": [1.0]})

    def test_unsupported_version(self):
        with pytest.raises(ConfigurationError, match="version"):
            StudySpec.from_json('{"version": 99, "design": {}}')

    def test_duplicate_knob_axis(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            DesignSpec(
                kind="knobs",
                base=Knobs(),
                axes=(
                    ("compute_tdp_w", (1.0,)),
                    ("compute_tdp_w", (2.0,)),
                ),
            )

    def test_fleet_rate_length_mismatch(self):
        uav = Knobs().build_uav()
        with pytest.raises(
            ConfigurationError, match=r"'design\.f_compute_hz'"
        ):
            DesignSpec.fleet((uav, uav, uav), (1.0, 2.0))


class TestLegacyEquivalence:
    """The rebased surfaces are numerically identical to the spec path."""

    def test_sweep_knob_matches_study(self):
        values = [1.0, 5.0, 15.0, 30.0]
        legacy = sweep_knob(Knobs(), "compute_tdp_w", values)
        study = run_study(
            StudySpec(
                design=DesignSpec.knob_axes(
                    Knobs(), {"compute_tdp_w": values}
                )
            )
        )
        assert [p.safe_velocity for p in legacy.points] == list(
            study.batch.safe_velocity
        )
        assert [p.bound for p in legacy.points] == study.batch.bounds()
        # Single-axis knob studies keep the sweep-style labels.
        assert study.batch.matrix.labels[0] == "compute_tdp_w=1"

    def test_sweep_grid_matches_study(self):
        axes = {
            "compute_tdp_w": (1.0, 7.5, 30.0),
            "compute_runtime_s": np.geomspace(0.002, 0.5, 4),
        }
        legacy = sweep_grid(Knobs(), axes)
        study = run_study(
            StudySpec(design=DesignSpec.knob_axes(Knobs(), axes))
        )
        assert study.shape == legacy.shape
        assert np.array_equal(
            legacy.values("safe_velocity"), study.values("safe_velocity")
        )
        assert np.array_equal(legacy.bound_grid(), study.bound_grid())

    def test_explore_matches_study(self):
        space = DesignSpace(
            uav_names=("dji-spark", "asctec-pelican"),
            compute_names=("intel-ncs", "jetson-tx2"),
            algorithm_names=("dronet", "trailnet"),
        )
        legacy = explore(space)
        study = run_study(
            StudySpec(
                design=DesignSpec.presets(
                    space.uav_names,
                    space.compute_names,
                    space.algorithm_names,
                ),
                rank=RankClause(by="safe_velocity", descending=True),
            )
        )
        selected = study.selected
        assert len(legacy) == len(selected)
        for i, candidate in enumerate(legacy):
            assert candidate.safe_velocity == selected.safe_velocity[i]
            assert candidate.total_mass_g == float(
                study.total_mass_g[study.selected_indices[i]]
            )
            assert candidate.label == selected.matrix.labels[i]

    def test_explore_scalar_equivalence_preserved(self):
        """The study-routed explore still matches the scalar evaluate."""
        from repro.dse.explorer import evaluate

        space = DesignSpace(
            uav_names=("nano-uav",),
            compute_names=("pulp-gap8",),
            algorithm_names=("dronet",),
        )
        (batch_result,) = explore(space)
        scalar = evaluate(next(iter(space.candidates())))
        assert batch_result.safe_velocity == pytest.approx(
            scalar.safe_velocity, abs=1e-9
        )
        assert batch_result.total_mass_g == pytest.approx(
            scalar.total_mass_g, abs=1e-9
        )
        assert batch_result.bound is scalar.bound

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        n_axes=st.integers(min_value=1, max_value=3),
    )
    def test_property_study_matches_scalar_and_roundtrip(
        self, data, n_axes
    ):
        """StudySpec -> plan -> result is 1e-9-identical to the scalar
        legacy path, and spec -> JSON -> spec -> result is bit-identical
        to spec -> result, over randomized knob axes."""
        ranges = {
            "sensor_framerate_hz": (5.0, 240.0),
            "compute_tdp_w": (0.5, 60.0),
            "compute_runtime_s": (0.001, 2.0),
            "sensor_range_m": (0.5, 50.0),
            "drone_weight_g": (50.0, 5000.0),
            "rotor_pull_g": (100.0, 2000.0),
            "payload_weight_g": (0.0, 800.0),
            "compute_mass_g": (5.0, 400.0),
        }
        knobs = data.draw(
            st.lists(
                st.sampled_from(sorted(SWEEPABLE_KNOBS)),
                min_size=n_axes,
                max_size=n_axes,
                unique=True,
            )
        )
        axes = {}
        for knob in knobs:
            low, high = ranges[knob]
            axes[knob] = data.draw(
                st.lists(
                    st.floats(
                        min_value=low,
                        max_value=high,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    min_size=1,
                    max_size=3,
                ),
                label=knob,
            )
        spec = StudySpec(design=DesignSpec.knob_axes(axes=axes))
        study = run_study(spec, cache=None)

        # 1e-9 against the per-point scalar model chain.
        base = Knobs()
        flat = 0
        for combo in np.ndindex(study.shape):
            point = replace(
                base,
                **{
                    knob: axes[knob][i]
                    for knob, i in zip(knobs, combo)
                },
            )
            model = point.build_uav().f1(point.f_compute_hz)
            assert study.batch.safe_velocity[flat] == pytest.approx(
                model.safe_velocity, abs=1e-9
            )
            flat += 1

        # spec -> JSON -> spec -> result, bit-identical.
        rebuilt_spec = StudySpec.from_json(spec.to_json())
        assert rebuilt_spec == spec
        again = run_study(rebuilt_spec, cache=None)
        assert study.equals(again)

        # Legacy grid surface agrees bit-for-bit too.
        legacy = sweep_grid(base, axes)
        assert np.array_equal(
            legacy.batch.safe_velocity, study.batch.safe_velocity
        )


class TestScenarios:
    def test_payload_delta_matches_manual_knobs(self):
        spec = StudySpec(
            design=DesignSpec.knob_axes(
                axes={"compute_runtime_s": [0.01, 0.1]}
            ),
            scenarios=ScenarioSpec(extra_payload_g=(0.0, 250.0)),
        )
        study = run_study(spec)
        assert study.shape == (2, 2)
        grid = study.values("safe_velocity")
        for i, runtime in enumerate((0.01, 0.1)):
            for j, delta in enumerate((0.0, 250.0)):
                knobs = Knobs(
                    compute_runtime_s=runtime,
                    payload_weight_g=delta,
                )
                model = knobs.build_uav().f1(knobs.f_compute_hz)
                assert grid[i, j] == pytest.approx(
                    model.safe_velocity, abs=1e-9
                )

    def test_a_max_scale_derates_acceleration(self):
        base_spec = knob_spec(compute_runtime_s=[0.01])
        derated = StudySpec(
            design=base_spec.design,
            scenarios=ScenarioSpec(a_max_scale=(1.0, 0.5)),
        )
        study = run_study(derated)
        baseline = run_study(base_spec)
        a = study.batch.matrix.a_max
        assert a[0] == baseline.batch.matrix.a_max[0]
        assert a[1] == pytest.approx(a[0] * 0.5)
        # Derated acceleration lowers the physics roof.
        assert (
            study.batch.roof_velocity[1] < study.batch.roof_velocity[0]
        )

    def test_payload_cannot_go_negative(self):
        spec = StudySpec(
            design=knob_spec(compute_runtime_s=[0.01]).design,
            scenarios=ScenarioSpec(extra_payload_g=(-100.0,)),
        )
        with pytest.raises(
            ConfigurationError, match=r"'scenarios\.extra_payload_g'"
        ):
            compile_spec(spec)

    def test_redundancy_on_fleet_matches_with_redundancy(self):
        uav = Skyline.from_preset(
            "asctec-pelican", compute_name="jetson-tx2"
        ).uav
        spec = StudySpec(
            design=DesignSpec.fleet((uav,), 178.0),
            scenarios=ScenarioSpec(compute_redundancy=(1, 3)),
        )
        study = run_study(spec)
        assert study.shape == (1, 2)
        tmr = uav.with_redundancy(3)
        assert float(study.total_mass_g[1]) == pytest.approx(
            tmr.total_mass_g, abs=1e-9
        )
        model = tmr.f1(178.0)
        assert study.batch.safe_velocity[1] == pytest.approx(
            model.safe_velocity, abs=1e-9
        )

    def test_scenario_axes_cross_and_scenario_varies_fastest(self):
        spec = StudySpec(
            design=knob_spec(compute_runtime_s=[0.01, 0.1]).design,
            scenarios=ScenarioSpec(
                extra_payload_g=(0.0, 100.0), a_max_scale=(1.0, 0.8)
            ),
        )
        study = run_study(spec)
        assert study.shape == (2, 2, 2)
        assert [a.name for a in study.axes] == [
            "compute_runtime_s",
            "extra_payload_g",
            "a_max_scale",
        ]
        f_c = study.batch.matrix.f_compute_hz
        # Design axis outermost: first 4 rows share the first runtime.
        assert np.allclose(f_c[:4], 100.0) and np.allclose(f_c[4:], 10.0)


class TestFiltersAndRank:
    @pytest.fixture()
    def spec(self):
        return StudySpec(
            design=DesignSpec.knob_axes(
                axes={
                    "compute_tdp_w": np.linspace(1.0, 30.0, 5),
                    "compute_runtime_s": np.geomspace(0.002, 0.5, 5),
                }
            )
        )

    def test_filters_match_manual_mask(self, spec):
        filtered = StudySpec(
            design=spec.design,
            filters=(
                FilterClause("safe_velocity", ">=", 6.0),
                FilterClause("bound", "==", "compute"),
            ),
        )
        study = run_study(filtered)
        batch = run_study(spec).batch
        mask = (batch.safe_velocity >= 6.0) & (
            np.asarray([b.value for b in batch.bounds()]) == "compute"
        )
        assert np.array_equal(
            study.selected_indices, np.flatnonzero(mask)
        )

    def test_mass_filter_uses_assembly_column(self, spec):
        study = run_study(
            StudySpec(
                design=spec.design,
                filters=(FilterClause("total_mass_g", "<", 1400.0),),
            )
        )
        assert len(study.selected_indices) > 0
        assert np.all(
            study.total_mass_g[study.selected_indices] < 1400.0
        )

    def test_rank_matches_batch_top_k(self, spec):
        ranked = StudySpec(
            design=spec.design,
            rank=RankClause(by="safe_velocity", top_k=5),
        )
        study = run_study(ranked)
        expected = run_study(spec).batch.top_k(5, by="safe_velocity")
        assert np.array_equal(
            study.selected.safe_velocity, expected.safe_velocity
        )

    def test_metrics_clause_controls_reporting(self, spec):
        study = run_study(
            StudySpec(
                design=spec.design,
                metrics=("safe_velocity", "bound"),
                rank=RankClause(top_k=3),
            )
        )
        metrics = study.metrics()
        assert set(metrics) == {"safe_velocity", "bound"}
        assert len(metrics["safe_velocity"]) == 3
        assert all(isinstance(name, str) for name in metrics["bound"])

    def test_empty_selection_is_legal(self, spec):
        study = run_study(
            StudySpec(
                design=spec.design,
                filters=(FilterClause("safe_velocity", ">", 1e6),),
            )
        )
        assert len(study.selected_indices) == 0
        assert len(study.selected) == 0
        rebuilt = StudyResult.from_json(study.to_json())
        assert rebuilt.equals(study)


class TestResultRoundTrip:
    def test_result_dict_roundtrip_all_kinds(self):
        specs = [
            knob_spec(compute_tdp_w=[1.0, 30.0]),
            StudySpec(
                design=DesignSpec.presets(
                    ("dji-spark",), ("intel-ncs",), ("dronet", "trailnet")
                ),
                rank=RankClause(top_k=1),
            ),
            StudySpec(
                design=DesignSpec.fleet(
                    (Knobs().build_uav(),), 100.0, labels=("one",)
                ),
                scenarios=ScenarioSpec(a_max_scale=(1.0, 0.9)),
            ),
        ]
        for spec in specs:
            study = run_study(spec)
            rebuilt = StudyResult.from_dict(
                json.loads(json.dumps(study.to_dict()))
            )
            assert rebuilt.equals(study)
            assert rebuilt.spec == spec
            assert rebuilt.shape == study.shape

    # Regression: a trivial ScenarioSpec() used to break the lossless
    # round trip (to_dict omits it, from_dict restored None, specs
    # compared unequal despite identical plans).
    def test_trivial_scenarios_normalize_to_none(self):
        spec = StudySpec(
            design=DesignSpec.knob_axes(axes={"compute_tdp_w": [1.0]}),
            scenarios=ScenarioSpec(),
        )
        assert spec.scenarios is None
        assert StudySpec.from_json(spec.to_json()) == spec

    # Regression: a result document missing the accounting columns
    # used to fail with a shape error instead of naming the key.
    def test_missing_result_extras_named(self):
        study = run_study(knob_spec(compute_tdp_w=[1.0, 30.0]))
        data = study.to_dict()
        del data["total_mass_g"]
        with pytest.raises(
            ConfigurationError, match="'total_mass_g'.*missing"
        ):
            StudyResult.from_dict(data)

    def test_save_load_files(self, tmp_path):
        spec = knob_spec(compute_runtime_s=[0.01, 0.1])
        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        assert StudySpec.load(spec_path) == spec
        study = run_study(spec)
        result_path = tmp_path / "result.json"
        study.save(result_path)
        assert StudyResult.load(result_path).equals(study)

    def test_skyline_study_entry_point(self):
        spec = knob_spec(compute_tdp_w=[1.0, 30.0])
        study = Skyline.study(spec)
        assert study.equals(run_study(spec))


class TestStudyCli:
    def test_study_from_spec_file(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        knob_spec(compute_tdp_w=[1.0, 30.0]).save(spec_path)
        out_path = tmp_path / "result.json"
        code = cli_main(
            ["study", "--spec", str(spec_path), "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "study compute_tdp_w[2]" in out
        loaded = StudyResult.load(out_path)
        assert loaded.spec == StudySpec.load(spec_path)

    def test_study_quick_mode_json(self, capsys):
        code = cli_main(
            [
                "study", "--knob", "compute_runtime_s",
                "--values", "0.01", "0.1", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        rebuilt = StudyResult.from_dict(data)
        assert rebuilt.shape == (2,)

    def test_study_quick_mode_requires_values(self, capsys):
        assert cli_main(["study", "--knob", "compute_tdp_w"]) == 2

    def test_study_malformed_spec_is_a_clean_error(self, capsys, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(
            '{"design": {"kind": "knobs", "base": {}, '
            '"axes": {"warp": [1.0]}}}'
        )
        code = cli_main(["study", "--spec", str(spec_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "design.axes" in err and "cannot sweep" in err

    def test_study_missing_file_is_a_clean_error(self, capsys):
        assert cli_main(["study", "--spec", "/nonexistent.json"]) == 1

    def test_sweep_json_output(self, capsys):
        code = cli_main(
            [
                "sweep", "--knob", "compute_tdp_w",
                "--values", "1", "30", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        rebuilt = StudyResult.from_dict(data)
        assert rebuilt.spec.design.kind == "knobs"
        assert len(rebuilt.batch) == 2

    def test_analyze_json_output(self, capsys):
        code = cli_main(
            [
                "analyze", "--uav", "dji-spark", "--compute", "intel-ncs",
                "--algorithm", "dronet", "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["algorithm"] == "dronet"
        assert data["uav"]["compute"]["name"] == "intel-ncs"
        analysis = data["analysis"]
        assert analysis["bound"] in (
            "physics", "sensor", "compute", "control"
        )
        assert analysis["safe_velocity"] > 0

    def test_analyze_json_with_plot_keeps_stdout_pure(
        self, capsys, tmp_path
    ):
        plot = tmp_path / "out.svg"
        code = cli_main(
            [
                "analyze", "--uav", "dji-spark", "--compute", "intel-ncs",
                "--algorithm", "dronet", "--json", "--plot", str(plot),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is valid JSON, nothing else
        assert plot.exists()
        assert "written" in captured.err


class TestCacheSharing:
    def test_study_and_sweep_share_the_default_cache(self):
        from repro.batch.engine import DEFAULT_CACHE

        values = [2.0, 4.0, 8.0]
        sweep_knob(Knobs(), "sensor_range_m", values)
        hits_before = DEFAULT_CACHE.stats.hits
        run_study(
            StudySpec(
                design=DesignSpec.knob_axes(
                    Knobs(), {"sensor_range_m": values}
                )
            )
        )
        assert DEFAULT_CACHE.stats.hits == hits_before + 1

    def test_plan_reuse_skips_recompilation(self):
        spec = knob_spec(compute_tdp_w=[1.0, 30.0])
        plan = compile_spec(spec)
        a = run_study(plan, cache=None)
        b = run_study(spec, cache=None)
        assert a.equals(b)
